"""Exact spatial-join engines (the estimators' ground truth).

Four interchangeable exact algorithms — blocked nested loop, plane sweep,
PBSM partition join, and the R-tree synchronized-traversal join — all
producing identical results (cross-checked in the test suite).
"""

from .api import JoinMethod, actual_selectivity, join_count, join_pairs
from .naive import nested_loop_count, nested_loop_pairs
from .partition import choose_grid_size, partition_join_count, partition_join_pairs
from .planesweep import plane_sweep_count, plane_sweep_pairs

__all__ = [
    "JoinMethod",
    "join_count",
    "join_pairs",
    "actual_selectivity",
    "nested_loop_count",
    "nested_loop_pairs",
    "plane_sweep_count",
    "plane_sweep_pairs",
    "partition_join_count",
    "partition_join_pairs",
    "choose_grid_size",
]
