"""Box-counting statistics for point datasets.

Substrate for the fractal selectivity estimators (the paper's related
work [6] Belussi & Faloutsos and [8] Faloutsos et al.): grid the extent
at a range of resolutions and aggregate cell occupancies.

The central quantity is the second-order sum ``S2(r) = sum_i n_i(r)^2``
over the cells of side ``r``: it counts (ordered) point pairs that fall
in the same cell, a proxy for pairs within L∞ distance ``~r``.  For a
self-similar point set, ``S2(r) ∝ r^D2`` where ``D2`` is the
*correlation fractal dimension* — ``2`` for uniform 2-D data, ``1`` for
points along a curve, ``0`` for a finite set of locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datasets import SpatialDataset
from ..histograms import Grid

__all__ = ["box_occupancies", "sum_squared_occupancy", "occupancy_profile", "OccupancyPoint"]


def _point_coords(dataset: SpatialDataset) -> tuple[np.ndarray, np.ndarray]:
    """Centers of the MBRs (for true point data these are the points)."""
    return dataset.rects.centers()


def box_occupancies(dataset: SpatialDataset, level: int) -> np.ndarray:
    """Cell occupancy counts (only occupied cells) at gridding ``level``."""
    grid = Grid(dataset.extent, level)
    x, y = _point_coords(dataset)
    flat = grid.row_of(y) * grid.side + grid.column_of(x)
    return np.bincount(flat, minlength=grid.cell_count).astype(np.int64)


def sum_squared_occupancy(dataset: SpatialDataset, level: int) -> int:
    """``S2 = sum n_i^2`` at one gridding level."""
    occ = box_occupancies(dataset, level)
    return int((occ.astype(np.float64) ** 2).sum())


@dataclass(frozen=True, slots=True)
class OccupancyPoint:
    """One (resolution, S2) measurement."""

    level: int
    cell_side: float  #: grid cell side length (geometric mean of axes)
    s2: float


def occupancy_profile(
    dataset: SpatialDataset, levels: Sequence[int]
) -> list[OccupancyPoint]:
    """``S2`` across a range of levels (the box-counting curve)."""
    points = []
    for level in levels:
        grid = Grid(dataset.extent, level)
        side = float(np.sqrt(grid.cell_width * grid.cell_height))
        points.append(
            OccupancyPoint(level=level, cell_side=side, s2=float(sum_squared_occupancy(dataset, level)))
        )
    return points
