"""Power-law (fractal) selectivity estimators for point datasets.

These implement the two parametric baselines the paper's related-work
section positions its histograms against:

* **Self-join** (Belussi & Faloutsos, TOIS '98 — the paper's [6]):
  the number of point pairs within L∞ distance ``eps`` of a
  self-similar dataset follows ``PC(eps) ≈ K * eps^D2`` with ``D2`` the
  correlation fractal dimension; both ``K`` and ``D2`` are fitted from
  the box-counting curve ``S2(r)``.
* **Cross-join** (Faloutsos, Seeger, Traina & Traina, SIGMOD 2000 — the
  paper's [8]): the cross pair-count function of two point datasets
  obeys a power law ``PC_ab(eps) ≈ K * eps^p``; here it is fitted from
  the cross box product ``B(r) = sum_i n_i(r) * m_i(r)``.

Both are *parametric* techniques in the paper's taxonomy: they assume a
law the data may not follow and only apply to point data — exactly the
restrictions the histogram schemes remove.  They are implemented to
serve as honest baselines (see ``benchmarks/bench_fractal_baseline.py``).

The spatial predicate estimated here is "within L∞ distance ``eps``",
which for points is equivalent to the paper's MBR-intersection predicate
after buffering each point into an ``eps x eps`` square.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datasets import SpatialDataset
from ..histograms import Grid

__all__ = [
    "PowerLawFit",
    "CorrelationDimensionEstimator",
    "CrossPowerLawEstimator",
    "pairs_within_distance",
]


@dataclass(frozen=True, slots=True)
class PowerLawFit:
    """A fitted law ``value(eps) = exp(intercept) * eps**exponent``."""

    exponent: float
    intercept: float

    def __call__(self, eps: float) -> float:
        if eps <= 0:
            return 0.0
        return float(np.exp(self.intercept) * eps**self.exponent)


def _fit_power_law(sides: np.ndarray, values: np.ndarray) -> PowerLawFit:
    """Least-squares line in log-log space (positive values only)."""
    mask = values > 0
    if mask.sum() < 2:
        raise ValueError(
            "power-law fit needs at least two resolutions with positive counts"
        )
    logs = np.log(sides[mask])
    logv = np.log(values[mask])
    exponent, intercept = np.polyfit(logs, logv, deg=1)
    return PowerLawFit(exponent=float(exponent), intercept=float(intercept))


def _require_points(dataset: SpatialDataset) -> None:
    if len(dataset) and float(dataset.rects.areas().max()) > 0:
        raise ValueError(
            "fractal estimators apply to point datasets only "
            "(the restriction the paper's histogram schemes remove)"
        )


class CorrelationDimensionEstimator:
    """Self-join estimator via the correlation fractal dimension ([6]).

    Fits ``S2(r) - N ≈ K * r^D2`` over the box-counting curve;
    ``S2(r) - N`` counts ordered *distinct* same-cell pairs, the proxy
    for pairs within distance ``r``.
    """

    def __init__(
        self, dataset: SpatialDataset, *, levels: Sequence[int] = tuple(range(2, 9))
    ) -> None:
        _require_points(dataset)
        if len(dataset) < 2:
            raise ValueError("need at least two points")
        from .boxcount import occupancy_profile

        self.dataset = dataset
        self.count = len(dataset)
        profile = occupancy_profile(dataset, levels)
        sides = np.array([p.cell_side for p in profile])
        distinct_pairs = np.array([p.s2 - self.count for p in profile])
        self.fit = _fit_power_law(sides, distinct_pairs)

    @property
    def correlation_dimension(self) -> float:
        """The fitted ``D2`` (2 = uniform plane, 1 = curve, 0 = atoms)."""
        return self.fit.exponent

    def estimate_pairs(self, eps: float) -> float:
        """Ordered distinct pairs within L∞ distance ``eps``.

        The box-counting curve is evaluated at side ``2 * eps``: a box of
        side ``s`` captures pairs at L∞ distances up to ``s``, while the
        distance-``eps`` neighbourhood of a point has diameter ``2*eps``
        (the same diameter-vs-radius constant appears in Belussi &
        Faloutsos' derivation).
        """
        if eps < 0:
            raise ValueError("eps must be non-negative")
        return self.fit(2.0 * eps)

    def estimate_selectivity(self, eps: float) -> float:
        """Self-join selectivity (ordered distinct pairs / N^2)."""
        return self.estimate_pairs(eps) / (self.count * self.count)


class CrossPowerLawEstimator:
    """Two-dataset estimator via the cross power law ([8]).

    Fits ``B(r) = sum_cells n_i * m_i ≈ K * r^p`` on a shared grid;
    ``B(r)`` counts cross pairs co-located at resolution ``r``.
    """

    def __init__(
        self,
        ds1: SpatialDataset,
        ds2: SpatialDataset,
        *,
        levels: Sequence[int] = tuple(range(2, 9)),
    ) -> None:
        _require_points(ds1)
        _require_points(ds2)
        if ds1.extent != ds2.extent:
            raise ValueError("datasets must share a common extent")
        if not len(ds1) or not len(ds2):
            raise ValueError("need non-empty datasets")
        from .boxcount import box_occupancies

        self.count1 = len(ds1)
        self.count2 = len(ds2)
        sides = []
        cross = []
        for level in levels:
            grid = Grid(ds1.extent, level)
            occ1 = box_occupancies(ds1, level).astype(np.float64)
            occ2 = box_occupancies(ds2, level).astype(np.float64)
            sides.append(float(np.sqrt(grid.cell_width * grid.cell_height)))
            cross.append(float((occ1 * occ2).sum()))
        self.fit = _fit_power_law(np.array(sides), np.array(cross))

    @property
    def pair_count_exponent(self) -> float:
        """The fitted exponent ``p`` of the pair-count law."""
        return self.fit.exponent

    def estimate_pairs(self, eps: float) -> float:
        """Cross pairs within L∞ distance ``eps`` (law at side ``2*eps``,
        the diameter of a distance-``eps`` neighbourhood)."""
        if eps < 0:
            raise ValueError("eps must be non-negative")
        return self.fit(2.0 * eps)

    def estimate_selectivity(self, eps: float) -> float:
        """Cross-join selectivity (pairs / (N1 * N2))."""
        return self.estimate_pairs(eps) / (self.count1 * self.count2)


def pairs_within_distance(
    ds1: SpatialDataset, ds2: SpatialDataset | None, eps: float
) -> int:
    """Ground truth: pairs with L∞ distance ≤ ``eps`` (exact).

    Equivalent to buffering each point of ``ds1`` into an ``eps x eps``
    square and joining with the raw points of ``ds2``.  For self joins
    (``ds2 is None``) the N identical pairs on the diagonal are
    excluded, matching :class:`CorrelationDimensionEstimator`.
    """
    from ..geometry import RectArray
    from ..join import join_count

    _require_points(ds1)
    if eps < 0:
        raise ValueError("eps must be non-negative")

    def buffered(ds: SpatialDataset) -> RectArray:
        # |p - q|_inf <= eps  <=>  the eps/2-buffered squares intersect.
        x, y = ds.rects.centers()
        return RectArray(
            x - eps / 2, y - eps / 2, x + eps / 2, y + eps / 2, validate=False
        )

    if ds2 is None:
        count = join_count(buffered(ds1), buffered(ds1)) - len(ds1)
        return max(count, 0)
    _require_points(ds2)
    return join_count(buffered(ds1), buffered(ds2))
