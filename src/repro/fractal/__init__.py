"""Fractal / power-law selectivity baselines for point datasets.

Implements the parametric related work the paper positions its
histograms against: the correlation-fractal-dimension self-join
estimator (Belussi & Faloutsos — reference [6]) and the cross power-law
estimator (Faloutsos et al. — reference [8]), both built on box-counting
statistics.
"""

from .boxcount import (
    OccupancyPoint,
    box_occupancies,
    occupancy_profile,
    sum_squared_occupancy,
)
from .powerlaw import (
    CorrelationDimensionEstimator,
    CrossPowerLawEstimator,
    PowerLawFit,
    pairs_within_distance,
)

__all__ = [
    "box_occupancies",
    "sum_squared_occupancy",
    "occupancy_profile",
    "OccupancyPoint",
    "PowerLawFit",
    "CorrelationDimensionEstimator",
    "CrossPowerLawEstimator",
    "pairs_within_distance",
]
