#!/usr/bin/env sh
# Run the full static-analysis gate locally.
#
# `repro.lint` is pure stdlib and always runs.  ruff and mypy are
# optional extras (`pip install -e ".[lint,typecheck]"`); when they are
# not installed this script skips them with a note instead of failing,
# so the domain-invariant gate stays usable in minimal environments.
set -eu

cd "$(dirname "$0")/.."

status=0

echo "== repro.lint =="
PYTHONPATH=src python -m repro.lint src tests --statistics || status=1

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests || status=1
else
    echo "ruff not installed; skipping (pip install -e \".[lint]\")"
fi

echo "== mypy =="
if command -v mypy >/dev/null 2>&1; then
    mypy || status=1
else
    echo "mypy not installed; skipping (pip install -e \".[typecheck]\")"
fi

exit "$status"
