"""Smoke tests of the top-level public API surface."""

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.hilbert",
            "repro.rtree",
            "repro.join",
            "repro.datasets",
            "repro.sampling",
            "repro.fractal",
            "repro.histograms",
            "repro.core",
            "repro.eval",
            "repro.service",
            "repro.perf",
            "repro.parallel",
            "repro.serve",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"


class TestQuickstartFlow:
    """The docstring quickstart must actually work."""

    def test_quickstart(self):
        from repro import GHEstimator, actual_selectivity, make_paper_pair

        ts, tcb = make_paper_pair("TS", "TCB", scale=400)
        estimate = GHEstimator(level=5).estimate(ts, tcb)
        truth = actual_selectivity(ts.rects, tcb.rects)
        assert estimate == pytest.approx(truth, rel=1.0)

    def test_catalog_flow(self):
        from repro import StatisticsCatalog, GHEstimator, make_paper_dataset

        catalog = StatisticsCatalog(GHEstimator(level=4))
        catalog.register(make_paper_dataset("SCRC", scale=400))
        catalog.register(make_paper_dataset("SURA", scale=400))
        assert catalog.estimate("SCRC", "SURA") > 0

    def test_eval_cli_importable(self):
        from repro.eval.__main__ import main

        assert callable(main)
