"""Batched estimation: equivalence, dedup, and runtime-scope fallback."""

from __future__ import annotations

import itertools

import pytest

from repro.core.estimator import BasicGHEstimator, GHEstimator, PHEstimator
from repro.datasets import SpatialDataset
from repro.errors import EstimationTimeout
from repro.geometry import Rect, RectArray
from repro.histograms import GHHistogram
from repro.perf import BatchQuery, EstimateCache, HistogramCache, estimate_many
from repro.runtime import Deadline, runtime_scope
from tests.conftest import random_rects


@pytest.fixture
def trio(rng) -> list[SpatialDataset]:
    return [SpatialDataset(f"d{i}", random_rects(rng, 300)) for i in range(3)]


def _count_gh_builds(monkeypatch):
    calls = []
    original = GHHistogram.build.__func__

    def counting(cls, dataset, level, *, extent=None):
        calls.append((dataset.name, level))
        return original(cls, dataset, level, extent=extent)

    monkeypatch.setattr(GHHistogram, "build", classmethod(counting))
    return calls


class TestEquivalence:
    def test_matches_individual_estimates(self, trio):
        queries = [
            BatchQuery(trio[0], trio[1], "gh", 5),
            (trio[1], trio[2], "gh", 5),
            (trio[0], trio[2], "ph", 4),
            (trio[0], trio[1], "gh_basic", 4),
        ]
        singles = [
            GHEstimator(level=5).estimate(trio[0], trio[1]),
            GHEstimator(level=5).estimate(trio[1], trio[2]),
            PHEstimator(level=4).estimate(trio[0], trio[2]),
            BasicGHEstimator(level=4).estimate(trio[0], trio[1]),
        ]
        assert estimate_many(queries) == singles
        assert estimate_many(queries, cache=HistogramCache()) == singles

    def test_order_preserved(self, trio):
        pairs = list(itertools.combinations(trio, 2))
        queries = [(a, b, "gh", 4) for a, b in pairs] + [
            (b, a, "gh", 4) for a, b in pairs
        ]
        results = estimate_many(queries)
        # GH combine is symmetric, so the reversed half mirrors the first.
        assert results[: len(pairs)] == results[len(pairs) :]

    def test_empty_batch(self):
        assert estimate_many([]) == []

    def test_empty_side_answers_zero_without_building(self, trio, monkeypatch):
        calls = _count_gh_builds(monkeypatch)
        empty = SpatialDataset("empty", RectArray.empty(), trio[0].extent)
        assert estimate_many([(trio[0], empty, "gh", 5)]) == [0.0]
        assert calls == []

    def test_extent_mismatch_raises(self, trio):
        shifted = SpatialDataset(
            "shifted", trio[1].rects, Rect(-0.5, -0.5, 1.5, 1.5)
        )
        with pytest.raises(ValueError, match="common extent"):
            estimate_many([(trio[0], shifted)])

    def test_unknown_scheme_raises(self, trio):
        with pytest.raises(ValueError, match="unknown scheme"):
            estimate_many([(trio[0], trio[1], "nope", 3)])


class TestDeduplication:
    def test_builds_once_per_distinct_histogram(self, trio, monkeypatch):
        calls = _count_gh_builds(monkeypatch)
        queries = [
            (a, b, "gh", 5) for a, b in itertools.product(trio, trio) if a is not b
        ]
        assert len(queries) == 6
        estimate_many(queries)
        assert len(calls) == 3  # one build per dataset, not per query

    def test_self_join_builds_once(self, trio, monkeypatch):
        calls = _count_gh_builds(monkeypatch)
        estimate_many([(trio[0], trio[0], "gh", 5)])
        assert len(calls) == 1

    def test_warm_cache_builds_nothing(self, trio, monkeypatch):
        cache = HistogramCache()
        queries = [(trio[0], trio[1], "gh", 5), (trio[1], trio[2], "gh", 5)]
        estimate_many(queries, cache=cache)
        calls = _count_gh_builds(monkeypatch)
        warm = estimate_many(queries, cache=cache)
        assert calls == []
        assert warm == estimate_many(queries)


class TestRuntimeScopeFallback:
    def test_serial_under_active_scope(self, trio, monkeypatch):
        """With a deadline or hook installed, builds must stay on the
        calling context (thread pools cannot see context-local scopes)."""
        import repro.perf.batch as batch_mod

        queries = [
            (a, b, "gh", 4) for a, b in itertools.product(trio, trio) if a is not b
        ]
        expected = estimate_many(queries)

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("thread pool used under an active runtime scope")

        monkeypatch.setattr(batch_mod, "ThreadPoolExecutor", boom)
        with runtime_scope(deadline=Deadline(None)):
            results = estimate_many(queries)
        assert results == expected

    def test_deadline_still_enforced(self, trio):
        with runtime_scope(deadline=Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                estimate_many([(trio[0], trio[1], "gh", 6)])

    def test_parallel_path_matches_serial(self, trio):
        queries = [
            (a, b, scheme, level)
            for (a, b), scheme, level in itertools.product(
                itertools.combinations(trio, 2), ("gh", "ph"), (3, 5)
            )
        ]
        assert estimate_many(queries, max_workers=4) == estimate_many(
            queries, max_workers=1
        )


class TestFingerprintDedup:
    def test_each_distinct_object_fingerprinted_once(self, trio, monkeypatch):
        """One batch folds each dataset *object* exactly once no matter
        how many queries reference it."""
        import repro.perf.batch as batch_mod

        calls: list[str] = []
        original = batch_mod.dataset_fingerprint

        def counting(dataset):
            calls.append(dataset.name)
            return original(dataset)

        monkeypatch.setattr(batch_mod, "dataset_fingerprint", counting)
        queries = [
            (a, b, scheme, level)
            for (a, b), scheme, level in itertools.product(
                itertools.product(trio, trio), ("gh", "ph"), (3, 4)
            )
            if a is not b
        ]
        assert len(queries) == 24
        estimate_many(queries)
        assert sorted(calls) == sorted(ds.name for ds in trio)


class TestSharedPool:
    def test_pool_is_created_once_and_reused(self, trio):
        import repro.perf.batch as batch_mod

        batch_mod._shutdown_shared_pool()
        queries = [(a, b, "gh", 4) for a, b in itertools.combinations(trio, 2)]
        estimate_many(queries)
        first = batch_mod._shared_pool
        assert first is not None
        estimate_many(queries)
        assert batch_mod._shared_pool is first

    def test_shutdown_then_rebuild(self, trio):
        import repro.perf.batch as batch_mod

        queries = [(a, b, "gh", 4) for a, b in itertools.combinations(trio, 2)]
        expected = estimate_many(queries)
        batch_mod._shutdown_shared_pool()
        assert batch_mod._shared_pool is None
        assert estimate_many(queries) == expected

    def test_explicit_workers_use_dedicated_pool(self, trio):
        """An explicit max_workers must not touch the shared pool."""
        import repro.perf.batch as batch_mod

        batch_mod._shutdown_shared_pool()
        queries = [(a, b, "gh", 4) for a, b in itertools.combinations(trio, 2)]
        estimate_many(queries, max_workers=2)
        assert batch_mod._shared_pool is None


class TestTier0Memo:
    def test_warm_batch_answers_from_memo(self, trio, monkeypatch):
        memo = EstimateCache(64)
        queries = [
            (trio[0], trio[1], "gh", 5),
            (trio[1], trio[2], "gh", 5),
            (trio[0], trio[2], "ph", 4),
        ]
        cold = estimate_many(queries, memo=memo)
        assert memo.stats.inserts == 3
        calls = _count_gh_builds(monkeypatch)
        warm = estimate_many(queries, memo=memo)
        assert calls == []  # memo hits plan zero builds
        assert warm == cold  # and replay bit-identically
        assert memo.stats.hits == 3

    def test_memo_results_match_memoless(self, trio):
        queries = [
            (a, b, scheme, 4)
            for (a, b), scheme in itertools.product(
                itertools.combinations(trio, 2), ("gh", "ph", "gh_basic")
            )
        ]
        plain = estimate_many(queries)
        memo = EstimateCache(64)
        assert estimate_many(queries, memo=memo) == plain
        assert estimate_many(queries, memo=memo) == plain

    def test_duplicate_queries_in_one_batch(self, trio):
        """The same query twice in one batch: one build pass, identical
        answers in both positions."""
        memo = EstimateCache(64)
        query = (trio[0], trio[1], "gh", 5)
        results = estimate_many([query, query], memo=memo)
        assert results[0] == results[1]

    def test_fault_hook_disables_memo(self, trio):
        memo = EstimateCache(64)
        queries = [(trio[0], trio[1], "gh", 4)]
        clean = estimate_many(queries, memo=memo)
        with runtime_scope(hook=object()):
            faulted = estimate_many(queries, memo=memo)
        assert faulted == clean  # inert hook: same numbers
        assert memo.stats.hits == 0  # but the memo was never consulted
        assert len(memo) == 1  # nor extended under the hook
