"""Cache correctness: fingerprints, LRU policy, budgets, derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.geometry import Rect
from repro.histograms import GHHistogram, PHHistogram
from repro.perf import CacheKey, HistogramCache, dataset_fingerprint
from repro.runtime import runtime_scope
from tests.conftest import random_rects


@pytest.fixture
def dataset(rng) -> SpatialDataset:
    return SpatialDataset("ds", random_rects(rng, 400))


def _make(rng, n=300, name="d") -> SpatialDataset:
    return SpatialDataset(name, random_rects(rng, n))


class TestFingerprint:
    def test_deterministic(self, dataset):
        assert dataset_fingerprint(dataset) == dataset_fingerprint(dataset)

    def test_name_does_not_matter(self, dataset):
        renamed = SpatialDataset("other-name", dataset.rects, dataset.extent)
        assert dataset_fingerprint(renamed) == dataset_fingerprint(dataset)

    def test_changes_on_dataset_mutation(self, dataset):
        """A sanctioned geometry change — an in-place array mutation
        announced via ``mark_mutated()`` — produces a different
        fingerprint (content addressing must never serve stale
        statistics for mutated data)."""
        before = dataset_fingerprint(dataset)
        dataset.rects.xmax[0] = min(dataset.rects.xmax[0] + 1e-9, 1.0)
        dataset.mark_mutated()
        assert dataset_fingerprint(dataset) != before

    def test_unsanctioned_mutation_caught_by_audit(self, dataset):
        """Mutating arrays without ``mark_mutated()`` is a contract
        violation; the periodic audit recomputes from bytes and raises
        rather than serving a stale digest."""
        from repro.errors import InvalidDatasetError
        from repro.perf import audit_fingerprint

        dataset_fingerprint(dataset)  # prime the token memo
        dataset.rects.xmax[0] = min(dataset.rects.xmax[0] + 1e-9, 1.0)
        with pytest.raises(InvalidDatasetError, match="mark_mutated"):
            audit_fingerprint(dataset)

    def test_changes_on_subset(self, dataset):
        assert dataset_fingerprint(dataset.subset(np.arange(10))) != dataset_fingerprint(
            dataset
        )

    def test_changes_with_extent(self, dataset):
        grown = dataset.with_extent(Rect(-1.0, -1.0, 2.0, 2.0))
        assert dataset_fingerprint(grown) != dataset_fingerprint(dataset)


class TestHitSemantics:
    def test_hit_is_bit_identical_to_cold_build(self, dataset):
        cache = HistogramCache()
        cold = GHHistogram.build(dataset, 5)
        first = cache.get_or_build(dataset, "gh", 5)
        hit = cache.get_or_build(dataset, "gh", 5)
        assert hit is first  # same retained object, no rebuild
        for cached_arr, cold_arr in zip(
            (hit.c, hit.o, hit.h, hit.v), (cold.c, cold.o, cold.h, cold.v)
        ):
            assert np.array_equal(cached_arr, cold_arr)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.builds == 1

    def test_schemes_do_not_collide(self, dataset):
        cache = HistogramCache()
        gh = cache.get_or_build(dataset, "gh", 4)
        ph = cache.get_or_build(dataset, "ph", 4)
        assert isinstance(gh, GHHistogram)
        assert isinstance(ph, PHHistogram)
        assert cache.stats.hits == 0

    def test_mutated_data_misses(self, rng):
        cache = HistogramCache()
        ds = _make(rng)
        cache.get_or_build(ds, "gh", 4)
        ds.rects.ymin[3] = ds.rects.ymin[3] / 2.0
        ds.mark_mutated()
        cache.get_or_build(ds, "gh", 4)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_unknown_scheme_rejected(self, dataset):
        with pytest.raises(ValueError, match="unknown scheme"):
            HistogramCache().get_or_build(dataset, "nope", 3)


class TestLRUAndBudget:
    def test_eviction_is_lru_ordered(self, rng):
        level = 5
        size = 8 * 4 * (1 << level) ** 2  # GH size_bytes at this level
        cache = HistogramCache(max_bytes=2 * size, derive_gh=False)
        d1, d2, d3 = (_make(rng, name=f"d{i}") for i in range(3))
        cache.get_or_build(d1, "gh", level)
        cache.get_or_build(d2, "gh", level)
        cache.get_or_build(d1, "gh", level)  # touch d1: d2 is now LRU
        cache.get_or_build(d3, "gh", level)  # evicts d2, not d1
        assert cache.stats.evictions == 1
        retained = {key.fingerprint for key in cache.keys()}
        assert dataset_fingerprint(d1) in retained
        assert dataset_fingerprint(d3) in retained
        assert dataset_fingerprint(d2) not in retained

    def test_byte_budget_enforced(self, rng):
        level = 4
        size = 8 * 4 * (1 << level) ** 2
        cache = HistogramCache(max_bytes=3 * size + size // 2, derive_gh=False)
        for i in range(8):
            cache.get_or_build(_make(rng, name=f"d{i}"), "gh", level)
            assert cache.current_bytes <= cache.max_bytes
        assert len(cache) == 3
        assert cache.stats.evictions == 5

    def test_oversize_entry_not_retained(self, dataset):
        cache = HistogramCache(max_bytes=1024)
        hist = cache.get_or_build(dataset, "gh", 6)  # 128 KiB > budget
        assert isinstance(hist, GHHistogram)
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            HistogramCache(max_bytes=0)


class TestDerivation:
    def test_coarser_gh_is_derived_not_built(self, dataset):
        cache = HistogramCache()
        cache.get_or_build(dataset, "gh", 6)
        derived = cache.get_or_build(dataset, "gh", 3)
        direct = GHHistogram.build(dataset, 3)
        assert cache.stats.builds == 1
        assert cache.stats.derivations == 1
        for got, want in zip(
            (derived.c, derived.o, derived.h, derived.v),
            (direct.c, direct.o, direct.h, direct.v),
        ):
            assert np.allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_nearest_finer_donor_is_used(self, dataset):
        cache = HistogramCache()
        cache.get_or_build(dataset, "gh", 7)
        cache.get_or_build(dataset, "gh", 5)  # derived from 7
        cache.get_or_build(dataset, "gh", 4)  # derived from 5 (nearest)
        assert cache.stats.builds == 1
        assert cache.stats.derivations == 2

    def test_derivation_disabled(self, dataset):
        cache = HistogramCache(derive_gh=False)
        cache.get_or_build(dataset, "gh", 6)
        cache.get_or_build(dataset, "gh", 3)
        assert cache.stats.builds == 2
        assert cache.stats.derivations == 0

    def test_ph_never_derives(self, dataset):
        # PH averages are not additive across resolutions; a coarser PH
        # must rebuild even when a finer one is cached.
        cache = HistogramCache()
        cache.get_or_build(dataset, "ph", 6)
        cache.get_or_build(dataset, "ph", 3)
        assert cache.stats.builds == 2
        assert cache.stats.derivations == 0


class TestFaultScopeHygiene:
    def test_build_under_mutation_hook_is_not_cached(self, dataset):
        """A build run under an active fault hook may carry corrupted
        cells — it must be served but never retained."""

        class PassthroughHook:
            def on_mutate(self, stage, value):
                return value

        cache = HistogramCache()
        with runtime_scope(hook=PassthroughHook()):
            hist = cache.get_or_build(dataset, "gh", 4)
        assert isinstance(hist, GHHistogram)
        assert len(cache) == 0
        # Out of scope the same request builds (and retains) cleanly.
        cache.get_or_build(dataset, "gh", 4)
        assert len(cache) == 1
        assert cache.stats.builds == 2


class TestKeyFor:
    def test_key_matches_lookup(self, dataset):
        cache = HistogramCache()
        cache.get_or_build(dataset, "gh", 4)
        key = HistogramCache.key_for(dataset, "gh", 4)
        assert isinstance(key, CacheKey)
        assert key in cache
