"""Warm-path latency budget: a memo hit must stay in the tens of µs.

Gated on machine size the same way the benchmark floors are: latency
assertions on a starved shared CI runner measure the scheduler, not the
code, so the budget only arms on >= 4 CPUs.  The *semantic* parts
(memo consulted, zero builds) always run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import GHEstimator
from repro.datasets import SpatialDataset
from repro.perf import EstimateCache
from tests.conftest import random_rects

BUDGET_S = 50e-6  #: median per warm estimate() call
_CPUS = os.cpu_count() or 1


@pytest.fixture
def warm(rng):
    pair = (
        SpatialDataset("a", random_rects(rng, 400)),
        SpatialDataset("b", random_rects(rng, 350)),
    )
    est = GHEstimator(level=6)
    est.memo = EstimateCache(16)
    cold = est.estimate(*pair)
    return est, pair, cold

def test_warm_hit_is_memo_only(warm):
    est, pair, cold = warm
    for _ in range(3):
        assert est.estimate(*pair) == cold
    assert est.memo.stats.hits == 3
    assert est.memo.stats.misses == 1


@pytest.mark.skipif(
    _CPUS < 4, reason=f"latency budget needs >= 4 CPUs (have {_CPUS})"
)
def test_warm_hit_under_budget(warm):
    est, pair, cold = warm
    for _ in range(50):  # warm up allocator, branch caches, token memo
        est.estimate(*pair)
    samples = []
    for _ in range(200):
        start = time.perf_counter()
        value = est.estimate(*pair)
        samples.append(time.perf_counter() - start)
        assert value == cold
    samples.sort()
    median = samples[len(samples) // 2]
    assert median < BUDGET_S, f"warm estimate median {median * 1e6:.1f}µs"
