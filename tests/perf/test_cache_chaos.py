"""Chaos tests for the caching layer: no partial artifacts, ever.

The invariant (ISSUE 6, satellite): when a fault fires in the middle of
a cached workload — an exception mid-``estimate_many``, a latency
injection, a silent cell corruption — neither :class:`HistogramCache`
nor :class:`FlatTreeCache` may retain anything built under the fault
hook.  A cache that keeps a corrupt histogram converts one transient
fault into an *unbounded* stream of wrong answers (content-addressed
hits never expire on their own), which is strictly worse than the fault
itself.
"""

import pytest

from repro.datasets import SpatialDataset
from repro.perf import FlatTreeCache, HistogramCache, estimate_many
from repro.perf.batch import BatchQuery
from repro.sampling import SamplingJoinEstimator
from repro.service import FaultPlan, FaultSpec, inject_faults
from tests.conftest import random_rects

pytestmark = pytest.mark.chaos


@pytest.fixture
def pair(rng):
    a = SpatialDataset("a", random_rects(rng, 200))
    b = SpatialDataset("b", random_rects(rng, 250))
    return a, b


def queries(pair):
    a, b = pair
    return [
        BatchQuery(a, b, "gh", 5),
        BatchQuery(a, b, "gh", 4),
        BatchQuery(a, b, "ph", 4),
    ]


class TestHistogramCacheUnderFaults:
    def test_exception_mid_batch_leaves_no_partial_artifacts(self, pair):
        """The fault fires after some builds already succeeded; none of
        them — completed or not — may have been retained."""
        cache = HistogramCache()
        plan = FaultPlan([FaultSpec("ph.build", times=1)])
        with inject_faults(plan):
            with pytest.raises(Exception):
                estimate_many(queries(pair), cache=cache)
        assert plan.activations  # the fault really fired
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_corruption_never_reaches_the_cache(self, pair):
        """A ``corrupt`` fault does not raise — the batch completes with
        wrong numbers — but the poisoned builds must not be retained."""
        cache = HistogramCache()
        plan = FaultPlan(
            [FaultSpec("gh.build.cells", kind="corrupt", times=99)]
        )
        with inject_faults(plan):
            estimate_many(queries(pair), cache=cache)
        assert plan.activations
        assert len(cache) == 0

    def test_clean_rerun_after_fault_is_correct_and_cached(self, pair):
        """Recovery: once the fault clears, the same workload produces
        the fault-free answers and the cache populates normally."""
        baseline = estimate_many(queries(pair))
        cache = HistogramCache()
        plan = FaultPlan([FaultSpec("gh.build.corners", times=1)])
        with inject_faults(plan):
            with pytest.raises(Exception):
                estimate_many(queries(pair), cache=cache)
        results = estimate_many(queries(pair), cache=cache)
        assert results == baseline
        assert len(cache) > 0
        assert cache.stats.builds > 0

    def test_latency_fault_also_blocks_retention(self, pair):
        """Even a fault that only delays (never corrupts) blocks
        retention: the cache cannot distinguish benign hooks from
        corrupting ones, so it refuses anything built under a hook."""
        cache = HistogramCache()
        plan = FaultPlan([FaultSpec("gh.build", kind="latency", seconds=0.0)])
        with inject_faults(plan):
            estimate_many(queries(pair), cache=cache)
        assert len(cache) == 0


class TestFlatTreeCacheUnderFaults:
    def test_fault_mid_sampling_leaves_tree_cache_empty(self, pair):
        """A fault between the build and join stages of a sampling
        estimate must not leave the just-built trees in the cache."""
        tree_cache = FlatTreeCache()
        est = SamplingJoinEstimator(
            "rswr", 0.5, 0.5, seed=7, tree_cache=tree_cache
        )
        plan = FaultPlan([FaultSpec("sampling.join", times=1)])
        with inject_faults(plan):
            with pytest.raises(Exception):
                est.estimate(*pair)
        assert plan.activations
        assert len(tree_cache) == 0
        assert tree_cache.current_bytes == 0

    def test_clean_rerun_populates_and_matches(self, pair):
        tree_cache = FlatTreeCache()
        est = SamplingJoinEstimator(
            "rswr", 0.5, 0.5, seed=7, tree_cache=tree_cache
        )
        baseline = SamplingJoinEstimator("rswr", 0.5, 0.5, seed=7).estimate(*pair)
        plan = FaultPlan([FaultSpec("sampling.build", times=1)])
        with inject_faults(plan):
            with pytest.raises(Exception):
                est.estimate(*pair)
        assert len(tree_cache) == 0
        assert est.estimate(*pair) == baseline  # same seed, same answer
        assert len(tree_cache) > 0

    def test_cache_reuse_after_recovery_is_hit_backed(self, pair):
        tree_cache = FlatTreeCache()
        est = SamplingJoinEstimator(
            "rswr", 0.5, 0.5, seed=7, tree_cache=tree_cache
        )
        est.estimate(*pair)
        hits_before = tree_cache.stats.hits
        est.estimate(*pair)
        assert tree_cache.stats.hits > hits_before
