"""Fused Equation 5 kernels: bit-identity, GEMM agreement, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GHEstimator
from repro.core.matrix import pairwise_selectivities
from repro.datasets import SpatialDataset
from repro.histograms import (
    GHHistogram,
    fused_pair_estimates,
    fused_selectivity_matrix,
    stack_gh,
)
from tests.conftest import random_rects


@pytest.fixture
def datasets(rng) -> "list[SpatialDataset]":
    return [
        SpatialDataset(f"d{i}", random_rects(rng, 150 + 40 * i)) for i in range(5)
    ]


@pytest.fixture
def histograms(datasets) -> "list[GHHistogram]":
    return [GHHistogram.build(ds, 4) for ds in datasets]


class TestStack:
    def test_shapes(self, histograms):
        stack = stack_gh(histograms)
        k, cells = len(histograms), histograms[0].c.size
        assert len(stack) == k
        for plane in (stack.c, stack.o, stack.h, stack.v):
            assert plane.shape == (k, cells)
        assert stack.counts.dtype == np.int64

    def test_grid_mismatch_rejected(self, datasets):
        coarse = GHHistogram.build(datasets[0], 3)
        fine = GHHistogram.build(datasets[1], 4)
        with pytest.raises(ValueError, match="grid"):
            stack_gh([coarse, fine])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            stack_gh([])


class TestFusedPairs:
    def test_bit_identical_to_scalar_combine(self, histograms):
        """The fused kernel must reproduce ``estimate_selectivity``
        *bit-for-bit* for every ordered pair, including self-joins —
        this is the contract that lets the memo and the batch engine
        substitute fused results for scalar ones."""
        k = len(histograms)
        idx1, idx2 = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        stack = stack_gh(histograms)
        fused = fused_pair_estimates(stack, idx1.ravel(), idx2.ravel())
        for flat, (i, j) in enumerate(zip(idx1.ravel(), idx2.ravel())):
            scalar = histograms[i].estimate_selectivity(histograms[j])
            assert fused[flat] == scalar, (i, j)

    def test_chunking_preserves_identity(self, histograms, monkeypatch):
        """Results are identical regardless of the pair-chunk size the
        kernel uses for checkpoint granularity."""
        import repro.histograms.fused as fused_mod

        stack = stack_gh(histograms)
        idx1 = np.array([0, 1, 2, 3, 4, 0], dtype=np.intp)
        idx2 = np.array([1, 2, 3, 4, 0, 0], dtype=np.intp)
        baseline = fused_pair_estimates(stack, idx1, idx2)
        monkeypatch.setattr(fused_mod, "_PAIR_CHUNK", 2)
        chunked = fused_pair_estimates(stack, idx1, idx2)
        assert np.array_equal(baseline, chunked)

    def test_empty_histogram_yields_zero(self, rng):
        full = GHHistogram.build(SpatialDataset("f", random_rects(rng, 100)), 4)
        empty = GHHistogram.build(
            SpatialDataset("e", random_rects(rng, 0), full.grid.extent), 4
        )
        stack = stack_gh([full, empty])
        out = fused_pair_estimates(
            stack, np.array([0, 1, 1]), np.array([1, 0, 1])
        )
        assert np.array_equal(out, np.zeros(3))
        assert full.estimate_selectivity(empty) == 0.0

    def test_mismatched_index_lengths_rejected(self, histograms):
        stack = stack_gh(histograms)
        with pytest.raises(ValueError):
            fused_pair_estimates(stack, np.array([0, 1]), np.array([0]))


class TestFusedMatrix:
    def test_close_to_scalar(self, histograms):
        stack = stack_gh(histograms)
        matrix = fused_selectivity_matrix(stack)
        k = len(histograms)
        assert matrix.shape == (k, k)
        for i in range(k):
            for j in range(k):
                scalar = histograms[i].estimate_selectivity(histograms[j])
                assert matrix[i, j] == pytest.approx(scalar, rel=1e-12)

    def test_symmetric(self, histograms):
        matrix = fused_selectivity_matrix(stack_gh(histograms))
        assert np.array_equal(matrix, matrix.T)


class TestMatrixEngines:
    def test_fused_matches_pairwise(self, datasets):
        est = GHEstimator(level=4)
        fused = pairwise_selectivities(datasets, est, engine="fused")
        scalar = pairwise_selectivities(datasets, est, engine="pairwise")
        assert fused.keys() == scalar.keys()
        for key, value in scalar.items():
            assert fused[key] == pytest.approx(value, rel=1e-12)

    def test_auto_picks_fused_for_gh(self, datasets):
        est = GHEstimator(level=4)
        auto = pairwise_selectivities(datasets, est)
        fused = pairwise_selectivities(datasets, est, engine="fused")
        assert auto == fused

    def test_fused_rejects_non_gh(self, datasets):
        from repro.core import PHEstimator

        with pytest.raises(ValueError, match="fused"):
            pairwise_selectivities(datasets, PHEstimator(level=4), engine="fused")

    def test_unknown_engine_rejected(self, datasets):
        with pytest.raises(ValueError, match="engine"):
            pairwise_selectivities(datasets, GHEstimator(level=4), engine="warp")
