"""FlatTreeCache: content addressing, LRU budget, hit/miss counters,
fault-scope hygiene, and the estimator integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.perf import FlatTreeCache, TreeCacheKey, rects_fingerprint
from repro.rtree import FlatRTree, flat_join_count, flat_load_str
from repro.runtime import runtime_scope
from repro.sampling import SamplingJoinEstimator
from tests.conftest import random_rects


@pytest.fixture
def rects(rng):
    return random_rects(rng, 300)


class TestRectsFingerprint:
    def test_deterministic_and_content_addressed(self, rects):
        assert rects_fingerprint(rects) == rects_fingerprint(rects)
        copy = rects[np.arange(len(rects))]
        assert rects_fingerprint(copy) == rects_fingerprint(rects)

    def test_any_coordinate_change_changes_it(self, rects):
        base = rects_fingerprint(rects)
        perturbed = rects[np.arange(len(rects))]
        perturbed.xmin[17] += 1e-9
        assert rects_fingerprint(perturbed) != base

    def test_domain_separated_from_datasets(self, rects):
        # A dataset over the same rects hashes extent + a different tag;
        # the two fingerprint spaces must not collide.
        from repro.perf import dataset_fingerprint

        ds = SpatialDataset("d", rects)
        assert dataset_fingerprint(ds) != rects_fingerprint(rects)


class TestGetOrBuild:
    def test_miss_builds_then_hits(self, rects):
        cache = FlatTreeCache()
        t1 = cache.get_or_build(rects)
        t2 = cache.get_or_build(rects)
        assert t1 is t2
        assert isinstance(t1, FlatRTree)
        assert cache.stats.misses == 1 and cache.stats.builds == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_tree_joins_identically_to_fresh(self, rects, rng):
        cache = FlatTreeCache()
        other = random_rects(rng, 200)
        cached = cache.get_or_build(rects)
        fresh = flat_load_str(rects)
        fo = flat_load_str(other)
        assert flat_join_count(cached, fo) == flat_join_count(fresh, fo)

    def test_packing_and_max_entries_are_part_of_the_key(self, rects):
        cache = FlatTreeCache()
        cache.get_or_build(rects, "str")
        cache.get_or_build(rects, "hilbert")
        cache.get_or_build(rects, "str", max_entries=8)
        assert len(cache) == 3
        assert cache.stats.hits == 0

    def test_key_for_rejects_unknown_packing(self, rects):
        with pytest.raises(ValueError, match="packing"):
            FlatTreeCache.key_for(rects, "zcurve")

    def test_key_is_content_addressed(self, rects):
        key = FlatTreeCache.key_for(rects)
        assert key == TreeCacheKey(rects_fingerprint(rects), "str", 32)


class TestRetention:
    def test_lru_eviction_within_budget(self, rng):
        parts = [random_rects(rng, 120) for _ in range(4)]
        one_tree = flat_load_str(parts[0]).size_bytes
        cache = FlatTreeCache(max_bytes=int(one_tree * 2.5))
        for p in parts:
            cache.get_or_build(p)
        assert cache.stats.evictions >= 1
        assert cache.current_bytes <= cache.max_bytes
        # Most recent entry survives.
        assert FlatTreeCache.key_for(parts[-1]) in cache

    def test_oversized_entry_served_but_not_retained(self, rects):
        cache = FlatTreeCache(max_bytes=64)
        tree = cache.get_or_build(rects)
        assert isinstance(tree, FlatRTree)
        assert len(cache) == 0

    def test_clear_preserves_counters(self, rects):
        cache = FlatTreeCache()
        cache.get_or_build(rects)
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats.builds == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            FlatTreeCache(max_bytes=0)

    def test_build_under_fault_hook_is_not_retained(self, rects):
        class PassthroughHook:
            def on_mutate(self, stage, value):
                return value

        cache = FlatTreeCache()
        with runtime_scope(hook=PassthroughHook()):
            tree = cache.get_or_build(rects)
        assert isinstance(tree, FlatRTree)
        assert len(cache) == 0
        cache.get_or_build(rects)
        assert len(cache) == 1


class TestEstimatorIntegration:
    def test_repeat_estimates_hit_the_cache(self, rng):
        ds1 = SpatialDataset("a", random_rects(rng, 400))
        ds2 = SpatialDataset("b", random_rects(rng, 300))
        cache = FlatTreeCache()
        est = SamplingJoinEstimator("rs", 0.5, 0.5, tree_cache=cache)
        v1 = est.estimate(ds1, ds2)
        v2 = est.estimate(ds1, ds2)
        assert v1 == v2
        assert cache.stats.builds == 2  # one per side, once
        assert cache.stats.hits == 2

    def test_cache_does_not_change_the_estimate(self, rng):
        ds1 = SpatialDataset("a", random_rects(rng, 400))
        ds2 = SpatialDataset("b", random_rects(rng, 300))
        plain = SamplingJoinEstimator("ss", 0.4, 0.4, seed=9)
        cached = SamplingJoinEstimator("ss", 0.4, 0.4, seed=9, tree_cache=FlatTreeCache())
        assert plain.estimate(ds1, ds2) == cached.estimate(ds1, ds2)

    def test_confidence_interval_identical_with_and_without_cache(self, rng):
        ds1 = SpatialDataset("a", random_rects(rng, 250))
        ds2 = SpatialDataset("b", random_rects(rng, 250))
        plain = SamplingJoinEstimator("rswr", 0.3, 0.3, seed=5)
        cached = SamplingJoinEstimator(
            "rswr", 0.3, 0.3, seed=5, tree_cache=FlatTreeCache()
        )
        a = plain.estimate_with_confidence(ds1, ds2, repeats=4)
        b = cached.estimate_with_confidence(ds1, ds2, repeats=4)
        assert a == b
