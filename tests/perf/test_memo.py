"""Tier-0 estimate memo: bit-identity, token invalidation, fault discipline."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import GHEstimator, PHEstimator
from repro.datasets import MutationToken, SpatialDataset
from repro.errors import InvalidDatasetError
from repro.geometry import Rect
from repro.histograms import apply_updates, GHHistogram
from repro.perf import (
    EstimateCache,
    EstimateKey,
    audit_fingerprint,
    dataset_fingerprint,
    dataset_fingerprint_uncached,
    peek_fingerprint,
    scheme_formula,
)
from repro.predicates import STANDARD_PREDICATES, create_predicate_estimator
from repro.runtime import runtime_scope
from tests.conftest import random_rects


@pytest.fixture
def pair(rng) -> "tuple[SpatialDataset, SpatialDataset]":
    return (
        SpatialDataset("a", random_rects(rng, 300)),
        SpatialDataset("b", random_rects(rng, 250)),
    )


class TestEstimateCache:
    def test_round_trip(self, pair):
        memo = EstimateCache(16)
        key = EstimateCache.key_for(*pair, "gh(level=4)", pair[0].extent)
        assert memo.get(key) is None
        memo.put(key, 0.125)
        assert memo.get(key) == 0.125
        assert memo.stats.misses == 1
        assert memo.stats.hits == 1
        assert len(memo) == 1

    def test_none_key_tolerated(self, pair):
        memo = EstimateCache(16)
        assert memo.get(None) is None
        memo.put(None, 1.0)  # no-op, not an error
        assert len(memo) == 0

    def test_lru_eviction(self, pair):
        memo = EstimateCache(2)
        keys = [
            EstimateKey("f1", "f2", f"gh(level={lvl})", (0.0, 0.0, 1.0, 1.0))
            for lvl in (3, 4, 5)
        ]
        memo.put(keys[0], 0.1)
        memo.put(keys[1], 0.2)
        memo.get(keys[0])  # touch: keys[1] is now LRU
        memo.put(keys[2], 0.3)
        assert memo.get(keys[0]) == 0.1
        assert memo.get(keys[1]) is None  # evicted
        assert memo.stats.evictions == 1

    def test_keys_are_ordered(self, pair):
        """Swapping the operands swaps the key: the combine's float
        additions happen in operand order, so (a, b) and (b, a) may
        differ in the last ulp and must not share an entry."""
        ds1, ds2 = pair
        forward = EstimateCache.key_for(ds1, ds2, "gh(level=4)", ds1.extent)
        reverse = EstimateCache.key_for(ds2, ds1, "gh(level=4)", ds1.extent)
        assert forward != reverse

    def test_fault_hook_bypasses_get_and_put(self, pair):
        memo = EstimateCache(16)
        key = EstimateCache.key_for(*pair, "gh(level=4)", pair[0].extent)
        memo.put(key, 0.5)
        with runtime_scope(hook=object()):
            assert memo.get(key) is None  # no lookup under a fault plan
            memo.put(key, 0.75)  # and no retention
        assert memo.stats.skips == 2
        assert memo.get(key) == 0.5  # clean value survives, fault value dropped

    def test_thread_safety_smoke(self, pair):
        memo = EstimateCache(64)
        keys = [
            EstimateKey("f1", "f2", f"gh(level={lvl})", (0.0, 0.0, 1.0, 1.0))
            for lvl in range(8)
        ]

        def worker(seed: int) -> None:
            for i in range(200):
                key = keys[(seed + i) % len(keys)]
                memo.put(key, float(i))
                memo.get(key)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(memo) <= 64


class TestBitIdentity:
    """A memo hit must replay *exactly* the float a cold estimate produces."""

    @pytest.mark.parametrize("kind", ["gh", "ph", "gh_basic", "parametric"])
    def test_intersects_estimators(self, pair, kind):
        from repro.core import create_estimator

        kwargs = {} if kind == "parametric" else {"level": 4}
        cold = create_estimator(kind, **kwargs).estimate(*pair)
        warm_est = create_estimator(kind, **kwargs)
        warm_est.memo = EstimateCache(16)
        first = warm_est.estimate(*pair)
        second = warm_est.estimate(*pair)
        assert warm_est.memo.stats.hits == 1
        assert first == cold
        assert second == cold  # bit-identical replay

    @pytest.mark.parametrize("kind", ["gh", "ph", "parametric"])
    @pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
    def test_predicate_estimators(self, pair, kind, pred_name):
        predicate = STANDARD_PREDICATES[pred_name]
        kwargs = {} if kind == "parametric" else {"level": 4}
        cold = create_predicate_estimator(kind, predicate, **kwargs).estimate(*pair)
        warm_est = create_predicate_estimator(kind, predicate, **kwargs)
        warm_est.memo = EstimateCache(16)
        first = warm_est.estimate(*pair)
        second = warm_est.estimate(*pair)
        assert warm_est.memo.stats.hits == 1
        assert first == cold == second

    def test_formulas_do_not_collide(self, pair):
        """Distinct estimator configurations share one memo without
        cross-talk: every (scheme, level, predicate) writes a distinct
        formula string."""
        from repro.core import create_estimator

        memo = EstimateCache(64)
        estimators = [
            create_estimator("gh", level=4),
            create_estimator("gh", level=5),
            create_estimator("ph", level=4),
            create_estimator("parametric"),
            create_predicate_estimator(
                "gh", STANDARD_PREDICATES["within_eps"], level=4
            ),
            create_predicate_estimator(
                "gh", STANDARD_PREDICATES["interval_x"], level=4
            ),
        ]
        cold = []
        for est in estimators:
            cold.append(est.estimate(*pair))
            est.memo = memo
        warm = [est.estimate(*pair) for est in estimators]
        replay = [est.estimate(*pair) for est in estimators]
        assert warm == cold == replay
        assert len({est.memo_formula() for est in estimators}) == len(estimators)


class TestMutationToken:
    def test_fresh_token_per_dataset(self, rng):
        a = SpatialDataset("a", random_rects(rng, 50))
        b = SpatialDataset("b", random_rects(rng, 50))
        assert a.token is not b.token

    def test_subset_and_with_extent_get_fresh_tokens(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 100))
        dataset_fingerprint(ds)  # prime the memo on the parent
        sub = ds.subset(np.arange(10))
        grown = ds.with_extent(Rect(-1.0, -1.0, 2.0, 2.0))
        assert sub.token is not ds.token
        assert grown.token is not ds.token
        # Derived datasets never inherit the parent's fingerprint memo.
        assert peek_fingerprint(sub) is None
        assert peek_fingerprint(grown) is None

    def test_fingerprint_memoized_until_bump(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 100))
        assert peek_fingerprint(ds) is None
        first = dataset_fingerprint(ds)
        assert peek_fingerprint(ds) == first
        before = ds.token.version
        ds.mark_mutated()
        assert ds.token.version == before + 1
        assert peek_fingerprint(ds) is None  # memo invalidated
        assert dataset_fingerprint(ds) == first  # same bytes, same digest

    def test_memo_matches_uncached(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 100))
        assert dataset_fingerprint(ds) == dataset_fingerprint_uncached(ds)
        assert dataset_fingerprint(ds) == dataset_fingerprint_uncached(ds)

    def test_tier0_invalidated_by_token_bump(self, pair):
        """After a sanctioned mutation the tier-0 key changes, so stale
        selectivities can never be replayed for new geometry."""
        ds1, ds2 = pair
        est = GHEstimator(level=4)
        est.memo = EstimateCache(16)
        stale = est.estimate(ds1, ds2)
        ds1.rects.xmax[0] = min(ds1.rects.xmax[0] + 0.01, 1.0)
        ds1.mark_mutated()
        fresh = est.estimate(ds1, ds2)
        assert est.memo.stats.hits == 0
        assert est.memo.stats.misses == 2
        assert fresh != stale

    def test_audit_catches_unsanctioned_mutation(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 100))
        dataset_fingerprint(ds)
        ds.rects.xmin[0] = ds.rects.xmin[0] / 2.0  # no mark_mutated(): contract breach
        with pytest.raises(InvalidDatasetError, match="mark_mutated"):
            audit_fingerprint(ds)

    def test_apply_updates_bumps_token(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 200))
        hist = GHHistogram.build(ds, 4)
        before = ds.token.version
        apply_updates(hist, added=random_rects(rng, 10), dataset=ds)
        assert ds.token.version == before + 1


class TestScopeDiscipline:
    def test_no_retention_under_fault_hook(self, pair):
        """An estimator evaluated under a fault plan must neither answer
        from nor poison the memo (the hook may have corrupted the
        build)."""
        est = GHEstimator(level=4)
        est.memo = EstimateCache(16)
        clean = est.estimate(*pair)
        with runtime_scope(hook=object()):
            faulted = est.estimate(*pair)
        assert len(est.memo) == 1  # only the clean entry
        assert est.memo.stats.skips == 2  # hook path skipped get and put
        assert faulted == clean  # an inert hook changes nothing numerically
        assert est.estimate(*pair) == clean

    def test_scheme_formula_matches_estimator_formula(self):
        assert scheme_formula("gh", 5) == GHEstimator(level=5).memo_formula()
        assert scheme_formula("ph", 4) == PHEstimator(level=4).memo_formula()
