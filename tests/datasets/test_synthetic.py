"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    make_clustered,
    make_diagonal,
    make_gaussian_clusters,
    make_grid_aligned,
    make_uniform,
)
from repro.datasets.synthetic import reflect_into
from repro.geometry import Rect

GENERATORS = [
    make_uniform,
    make_clustered,
    make_gaussian_clusters,
    make_diagonal,
    make_grid_aligned,
]


@pytest.mark.parametrize("generator", GENERATORS)
class TestCommonContract:
    def test_count(self, generator):
        assert len(generator(321, seed=1)) == 321

    def test_data_inside_extent(self, generator):
        ds = generator(500, seed=2)
        bounds = ds.rects.bounds()
        assert ds.extent.contains_rect(bounds)

    def test_reproducible_with_seed(self, generator):
        assert generator(100, seed=7).rects == generator(100, seed=7).rects

    def test_different_seeds_differ(self, generator):
        assert generator(100, seed=1).rects != generator(100, seed=2).rects

    def test_custom_extent(self, generator):
        extent = Rect(10, 20, 30, 50)
        ds = generator(200, seed=3, extent=extent)
        assert ds.extent == extent
        assert extent.contains_rect(ds.rects.bounds())


class TestReflectInto:
    def test_inside_unchanged(self):
        vals = np.array([0.1, 0.5, 0.9])
        assert np.allclose(reflect_into(vals, 0, 1), vals)

    def test_overshoot_reflected(self):
        assert reflect_into(np.array([1.2]), 0, 1)[0] == pytest.approx(0.8)
        assert reflect_into(np.array([-0.3]), 0, 1)[0] == pytest.approx(0.3)

    def test_far_overshoot_folds_periodically(self):
        assert 0 <= reflect_into(np.array([17.37]), 0, 1)[0] <= 1

    def test_no_boundary_pileup(self):
        rng = np.random.default_rng(0)
        vals = reflect_into(rng.normal(0.5, 2.0, size=10_000), 0, 1)
        assert ((vals == 0) | (vals == 1)).sum() == 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            reflect_into(np.array([0.5]), 1, 1)


class TestDistributionShapes:
    def test_uniform_spread(self):
        ds = make_uniform(5000, seed=0)
        cx, cy = ds.rects.centers()
        # Uniform on [0,1]: mean ~0.5, std ~0.289.
        assert abs(cx.mean() - 0.5) < 0.02
        assert abs(cx.std() - 0.2887) < 0.02

    def test_clustered_concentrates_at_center(self):
        ds = make_clustered(5000, seed=0, center=(0.4, 0.7), spread=0.05)
        cx, cy = ds.rects.centers()
        assert abs(cx.mean() - 0.4) < 0.01
        assert abs(cy.mean() - 0.7) < 0.01
        assert cx.std() < 0.08

    def test_clustered_respects_spread(self):
        tight = make_clustered(3000, seed=0, spread=0.02)
        loose = make_clustered(3000, seed=0, spread=0.2)
        assert tight.rects.centers()[0].std() < loose.rects.centers()[0].std()

    def test_gaussian_clusters_skew(self):
        ds = make_gaussian_clusters(5000, seed=0, n_clusters=10, zipf_exponent=2.0)
        # With exponent 2 the first cluster holds most of the mass, so the
        # point cloud is far from uniform: compare cell occupancy entropy.
        cx, cy = ds.rects.centers()
        hist, _, _ = np.histogram2d(cx, cy, bins=8, range=[[0, 1], [0, 1]])
        top_share = hist.max() / hist.sum()
        assert top_share > 0.1  # uniform would give ~1/64

    def test_gaussian_clusters_custom_centers(self):
        ds = make_gaussian_clusters(
            1000, seed=0, centers=[(0.25, 0.25)], spread_range=(0.01, 0.011)
        )
        cx, cy = ds.rects.centers()
        assert abs(cx.mean() - 0.25) < 0.01

    def test_gaussian_clusters_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            make_gaussian_clusters(10, n_clusters=0)

    def test_diagonal_correlation(self):
        ds = make_diagonal(3000, seed=0, jitter=0.01)
        cx, cy = ds.rects.centers()
        assert np.corrcoef(cx, cy)[0, 1] > 0.95

    def test_grid_aligned_contained_in_cells(self):
        grid = 16
        ds = make_grid_aligned(2000, seed=0, grid=grid)
        r = ds.rects
        ci0 = np.floor(r.xmin * grid).astype(int)
        # Cells are half-open; an xmax exactly on a line belongs left.
        ci1 = np.ceil(r.xmax * grid).astype(int) - 1
        assert np.all(ci0 >= np.minimum(ci1, ci0))
        assert np.all(ci1 - ci0 <= 0)

    def test_grid_aligned_rejects_bad_fill(self):
        with pytest.raises(ValueError):
            make_grid_aligned(10, fill_fraction=0.0)

    def test_mean_side_parameter(self):
        small = make_uniform(3000, seed=0, mean_width=0.001, mean_height=0.001)
        large = make_uniform(3000, seed=0, mean_width=0.05, mean_height=0.05)
        assert small.rects.widths().mean() < large.rects.widths().mean()
        assert large.rects.widths().mean() == pytest.approx(0.05, rel=0.15)

    def test_generator_instance_accepted_as_seed(self):
        gen = np.random.default_rng(5)
        ds = make_uniform(10, seed=gen)
        assert len(ds) == 10
