"""Unit tests for the simulated real-dataset analogues."""

import numpy as np
import pytest

from repro.datasets import (
    make_blocks_like,
    make_points_like,
    make_polygons_like,
    make_roads_like,
    make_streams_like,
)
from repro.geometry import Rect

GENERATORS = [
    make_streams_like,
    make_blocks_like,
    make_roads_like,
    make_points_like,
    make_polygons_like,
]


@pytest.mark.parametrize("generator", GENERATORS)
class TestCommonContract:
    def test_count(self, generator):
        assert len(generator(777, seed=0)) == 777

    def test_inside_extent(self, generator):
        ds = generator(400, seed=1)
        assert ds.extent.contains_rect(ds.rects.bounds())

    def test_reproducible(self, generator):
        assert generator(150, seed=9).rects == generator(150, seed=9).rects

    def test_custom_extent(self, generator):
        extent = Rect(-5, -5, 5, 5)
        ds = generator(300, seed=2, extent=extent)
        assert ds.extent == extent
        assert extent.contains_rect(ds.rects.bounds())

    def test_custom_name(self, generator):
        assert generator(10, seed=0, name="X").name == "X"


class TestStreams:
    def test_segments_are_thin(self):
        ds = make_streams_like(3000, seed=0, step=0.004)
        sides = np.maximum(ds.rects.widths(), ds.rects.heights())
        assert np.median(sides) < 0.01  # short segments

    def test_spatial_autocorrelation(self):
        """Consecutive segments of a stream are adjacent — streams are not
        a uniform scatter."""
        ds = make_streams_like(3000, seed=0, segments_per_stream=30)
        cx, cy = ds.rects.centers()
        consecutive = np.hypot(np.diff(cx[:30]), np.diff(cy[:30]))
        assert consecutive.max() < 0.05


class TestBlocks:
    def test_high_coverage(self):
        """Census-block MBRs nearly tile the space."""
        ds = make_blocks_like(5000, seed=0)
        assert 0.3 < ds.summary().coverage < 1.2

    def test_size_skew_from_hotspots(self):
        """Blocks near hotspots are much smaller than rural blocks."""
        ds = make_blocks_like(5000, seed=0)
        areas = ds.rects.areas()
        assert areas.max() > 50 * np.median(areas)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            make_blocks_like(0)


class TestRoads:
    def test_axis_alignment(self):
        """Most road segments are strongly horizontal or vertical."""
        ds = make_roads_like(3000, seed=0)
        w, h = ds.rects.widths(), ds.rects.heights()
        aspect = np.maximum(w, h) / np.maximum(np.minimum(w, h), 1e-12)
        assert np.median(aspect) > 3.0

    def test_heavy_clustering(self):
        ds = make_roads_like(5000, seed=0, zipf_exponent=1.4)
        cx, cy = ds.rects.centers()
        hist, _, _ = np.histogram2d(cx, cy, bins=16, range=[[0, 1], [0, 1]])
        top_share = np.sort(hist.ravel())[::-1][:8].sum() / hist.sum()
        assert top_share > 0.3  # uniform would give ~8/256


class TestPoints:
    def test_zero_area(self):
        ds = make_points_like(1000, seed=0)
        assert np.all(ds.rects.areas() == 0)
        assert np.all(ds.rects.widths() == 0)

    def test_no_boundary_pileup(self):
        ds = make_points_like(5000, seed=0)
        on_border = (
            (ds.rects.xmin == 0)
            | (ds.rects.xmin == 1)
            | (ds.rects.ymin == 0)
            | (ds.rects.ymin == 1)
        )
        assert on_border.sum() == 0


class TestPolygons:
    def test_heavy_tailed_sizes(self):
        ds = make_polygons_like(3000, seed=0)
        areas = ds.rects.areas()
        assert areas.max() > 20 * np.median(areas)

    def test_positive_area(self):
        ds = make_polygons_like(500, seed=0)
        assert np.all(ds.rects.areas() > 0)
