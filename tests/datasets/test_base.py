"""Unit tests for the SpatialDataset wrapper."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.geometry import Rect, RectArray
from tests.conftest import random_rects


class TestConstruction:
    def test_basic(self, rng):
        rects = random_rects(rng, 50)
        ds = SpatialDataset("test", rects)
        assert len(ds) == ds.count == 50
        assert ds.extent == Rect.unit()

    def test_extent_must_contain_data(self):
        rects = RectArray.from_rects([Rect(0, 0, 2, 2)])
        with pytest.raises(ValueError, match="outside its extent"):
            SpatialDataset("bad", rects, Rect(0, 0, 1, 1))

    def test_extent_must_have_area(self):
        with pytest.raises(ValueError, match="positive area"):
            SpatialDataset("bad", RectArray.empty(), Rect(0, 0, 0, 1))

    def test_from_rects_defaults_extent_to_bounds(self, rng):
        rects = random_rects(rng, 20, extent=Rect(2, 2, 5, 9))
        ds = SpatialDataset.from_rects("auto", rects)
        assert ds.extent == rects.bounds()

    def test_from_rects_empty(self):
        ds = SpatialDataset.from_rects("empty", RectArray.empty())
        assert len(ds) == 0
        assert ds.extent == Rect.unit()

    def test_repr(self, rng):
        ds = SpatialDataset("foo", random_rects(rng, 3))
        assert "foo" in repr(ds) and "n=3" in repr(ds)


class TestSummary:
    def test_matches_manual_computation(self, rng):
        rects = random_rects(rng, 100)
        ds = SpatialDataset("s", rects)
        summary = ds.summary()
        assert summary.count == 100
        assert summary.coverage == pytest.approx(rects.total_area() / 1.0)
        assert summary.avg_width == pytest.approx(float(rects.widths().mean()))
        assert summary.avg_height == pytest.approx(float(rects.heights().mean()))
        assert summary.extent_area == 1.0

    def test_empty_summary(self):
        summary = SpatialDataset("e", RectArray.empty()).summary()
        assert summary.count == 0
        assert summary.coverage == 0.0

    def test_coverage_scales_with_extent(self, rng):
        rects = random_rects(rng, 100)
        small = SpatialDataset("a", rects, Rect.unit()).summary()
        large = SpatialDataset("b", rects, Rect(-1, -1, 3, 3)).summary()
        assert small.coverage == pytest.approx(16 * large.coverage)

    def test_point_dataset_zero_coverage(self, rng):
        points = RectArray.from_points(rng.random(30), rng.random(30))
        summary = SpatialDataset("p", points).summary()
        assert summary.coverage == 0.0
        assert summary.avg_width == 0.0


class TestTransforms:
    def test_subset(self, rng):
        ds = SpatialDataset("base", random_rects(rng, 50))
        sub = ds.subset(np.array([1, 5, 7]))
        assert len(sub) == 3
        assert sub.extent == ds.extent
        assert sub.name.startswith("base.")

    def test_with_extent(self, rng):
        ds = SpatialDataset("base", random_rects(rng, 10))
        wider = ds.with_extent(Rect(-1, -1, 2, 2))
        assert wider.extent == Rect(-1, -1, 2, 2)
        assert wider.rects is ds.rects

    def test_with_extent_validates(self, rng):
        ds = SpatialDataset("base", random_rects(rng, 10))
        with pytest.raises(ValueError):
            ds.with_extent(Rect(10, 10, 11, 11))
