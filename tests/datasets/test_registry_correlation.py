"""Paired paper datasets must share spatial structure (DESIGN.md §4):
real census blocks are dense near the streams, Californian roads near
the rivers.  These tests pin the cross-dataset correlation that gives
the coarse-level underestimation signature of the paper's Figure 7."""

import numpy as np

from repro.datasets import make_paper_pair


def density_grid(ds, bins=8):
    cx, cy = ds.rects.centers()
    hist, _, _ = np.histogram2d(cx, cy, bins=bins, range=[[0, 1], [0, 1]])
    return hist.ravel() / hist.sum()


def correlation(ds1, ds2) -> float:
    return float(np.corrcoef(density_grid(ds1), density_grid(ds2))[0, 1])


class TestPairedCorrelation:
    def test_ts_tcb_positively_correlated(self):
        ts, tcb = make_paper_pair("TS", "TCB", scale=100)
        assert correlation(ts, tcb) > 0.2

    def test_cas_car_positively_correlated(self):
        cas, car = make_paper_pair("CAS", "CAR", scale=100)
        assert correlation(cas, car) > 0.3

    def test_scrc_sura_uncorrelated(self):
        """The synthetic pair is described as independent in the paper."""
        scrc, sura = make_paper_pair("SCRC", "SURA", scale=100)
        assert abs(correlation(scrc, sura)) < 0.3

    def test_correlation_produces_coarse_underestimation(self):
        """The design consequence: the parametric (h=0) estimate must
        *under*estimate on the correlated real pairs."""
        from repro.histograms import parametric_selectivity
        from repro.join import actual_selectivity

        for pair in (("TS", "TCB"), ("CAS", "CAR")):
            ds1, ds2 = make_paper_pair(*pair, scale=100)
            estimate = parametric_selectivity(ds1, ds2)
            truth = actual_selectivity(ds1.rects, ds2.rects)
            assert estimate < truth, pair
