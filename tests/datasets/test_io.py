"""Unit tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset, load_dataset, save_dataset
from repro.errors import InvalidDatasetError
from repro.geometry import Rect, RectArray
from tests.conftest import random_rects


class TestRoundTrip:
    def test_basic(self, rng, tmp_path):
        ds = SpatialDataset("roundtrip", random_rects(rng, 123), Rect.unit())
        path = save_dataset(ds, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert loaded.name == "roundtrip"
        assert loaded.extent == ds.extent
        assert loaded.rects == ds.rects

    def test_suffix_added(self, rng, tmp_path):
        ds = SpatialDataset("x", random_rects(rng, 5))
        path = save_dataset(ds, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_empty_dataset(self, tmp_path):
        ds = SpatialDataset("empty", RectArray.empty())
        loaded = load_dataset(save_dataset(ds, tmp_path / "e.npz"))
        assert len(loaded) == 0

    def test_non_unit_extent(self, rng, tmp_path):
        extent = Rect(-10, 5, 30, 45)
        ds = SpatialDataset("wide", random_rects(rng, 10, extent=extent), extent)
        loaded = load_dataset(save_dataset(ds, tmp_path / "w.npz"))
        assert loaded.extent == extent

    def test_creates_parent_dirs(self, rng, tmp_path):
        ds = SpatialDataset("nested", random_rects(rng, 3))
        path = save_dataset(ds, tmp_path / "a" / "b" / "c.npz")
        assert path.exists()

    def test_coordinates_exact(self, tmp_path):
        # float64 coordinates must survive bit-exactly.
        rects = RectArray.from_rects([Rect(0.1, 0.2, 0.30000000000000004, 1 / 3)])
        ds = SpatialDataset("precise", rects, Rect.unit())
        loaded = load_dataset(save_dataset(ds, tmp_path / "p.npz"))
        assert np.array_equal(loaded.rects.xmax, rects.xmax)


class TestVersioning:
    def test_unsupported_version_rejected(self, rng, tmp_path):
        ds = SpatialDataset("v", random_rects(rng, 2))
        path = save_dataset(ds, tmp_path / "v.npz")
        blob = dict(np.load(path, allow_pickle=False))
        blob["version"] = np.int64(999)
        np.savez(path, **blob)
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)


def _tampered(path, tmp_path, **changes):
    """Rewrite a saved dataset file with keys replaced or removed."""
    blob = dict(np.load(path, allow_pickle=False))
    for key, value in changes.items():
        if value is None:
            del blob[key]
        else:
            blob[key] = value
    out = tmp_path / "tampered.npz"
    np.savez(out, **blob)
    return out


class TestMalformedFiles:
    """Malformed .npz drop-ins raise InvalidDatasetError, not KeyError."""

    @pytest.fixture
    def saved(self, rng, tmp_path):
        ds = SpatialDataset("m", random_rects(rng, 8))
        return save_dataset(ds, tmp_path / "m.npz")

    @pytest.mark.parametrize("key", ["version", "name", "coords", "extent"])
    def test_missing_key(self, saved, tmp_path, key):
        bad = _tampered(saved, tmp_path, **{key: None})
        with pytest.raises(InvalidDatasetError, match="missing required key"):
            load_dataset(bad)

    def test_missing_key_is_a_value_error(self, saved, tmp_path):
        # Not a KeyError: callers catching ValueError keep working.
        bad = _tampered(saved, tmp_path, coords=None)
        with pytest.raises(ValueError):
            load_dataset(bad)

    def test_nan_coords_rejected(self, saved, tmp_path):
        coords = np.array([[0.1, 0.1, np.nan, 0.2]])
        bad = _tampered(saved, tmp_path, coords=coords)
        with pytest.raises(InvalidDatasetError, match="NaN/inf"):
            load_dataset(bad)

    def test_inf_coords_rejected(self, saved, tmp_path):
        coords = np.array([[0.1, 0.1, np.inf, 0.2]])
        bad = _tampered(saved, tmp_path, coords=coords)
        with pytest.raises(InvalidDatasetError, match="NaN/inf"):
            load_dataset(bad)

    def test_inverted_coords_rejected(self, saved, tmp_path):
        coords = np.array([[0.9, 0.1, 0.2, 0.2]])  # xmin > xmax
        bad = _tampered(saved, tmp_path, coords=coords)
        with pytest.raises(InvalidDatasetError):
            load_dataset(bad)

    def test_wrong_coords_shape_rejected(self, saved, tmp_path):
        bad = _tampered(saved, tmp_path, coords=np.ones((4, 3)))
        with pytest.raises(InvalidDatasetError, match="shape"):
            load_dataset(bad)

    def test_malformed_extent_rejected(self, saved, tmp_path):
        bad = _tampered(saved, tmp_path, extent=np.array([0.0, 0.0, np.nan, 1.0]))
        with pytest.raises(InvalidDatasetError, match="extent"):
            load_dataset(bad)

    def test_inverted_extent_rejected(self, saved, tmp_path):
        bad = _tampered(saved, tmp_path, extent=np.array([1.0, 0.0, 0.0, 1.0]))
        with pytest.raises(InvalidDatasetError):
            load_dataset(bad)

    def test_coords_outside_extent_rejected(self, saved, tmp_path):
        bad = _tampered(
            saved, tmp_path,
            coords=np.array([[2.0, 2.0, 3.0, 3.0]]),
            extent=np.array([0.0, 0.0, 1.0, 1.0]),
        )
        with pytest.raises(InvalidDatasetError, match="extent"):
            load_dataset(bad)
