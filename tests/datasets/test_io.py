"""Unit tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset, load_dataset, save_dataset
from repro.geometry import Rect, RectArray
from tests.conftest import random_rects


class TestRoundTrip:
    def test_basic(self, rng, tmp_path):
        ds = SpatialDataset("roundtrip", random_rects(rng, 123), Rect.unit())
        path = save_dataset(ds, tmp_path / "ds.npz")
        loaded = load_dataset(path)
        assert loaded.name == "roundtrip"
        assert loaded.extent == ds.extent
        assert loaded.rects == ds.rects

    def test_suffix_added(self, rng, tmp_path):
        ds = SpatialDataset("x", random_rects(rng, 5))
        path = save_dataset(ds, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_empty_dataset(self, tmp_path):
        ds = SpatialDataset("empty", RectArray.empty())
        loaded = load_dataset(save_dataset(ds, tmp_path / "e.npz"))
        assert len(loaded) == 0

    def test_non_unit_extent(self, rng, tmp_path):
        extent = Rect(-10, 5, 30, 45)
        ds = SpatialDataset("wide", random_rects(rng, 10, extent=extent), extent)
        loaded = load_dataset(save_dataset(ds, tmp_path / "w.npz"))
        assert loaded.extent == extent

    def test_creates_parent_dirs(self, rng, tmp_path):
        ds = SpatialDataset("nested", random_rects(rng, 3))
        path = save_dataset(ds, tmp_path / "a" / "b" / "c.npz")
        assert path.exists()

    def test_coordinates_exact(self, tmp_path):
        # float64 coordinates must survive bit-exactly.
        rects = RectArray.from_rects([Rect(0.1, 0.2, 0.30000000000000004, 1 / 3)])
        ds = SpatialDataset("precise", rects, Rect.unit())
        loaded = load_dataset(save_dataset(ds, tmp_path / "p.npz"))
        assert np.array_equal(loaded.rects.xmax, rects.xmax)


class TestVersioning:
    def test_unsupported_version_rejected(self, rng, tmp_path):
        ds = SpatialDataset("v", random_rects(rng, 2))
        path = save_dataset(ds, tmp_path / "v.npz")
        blob = dict(np.load(path, allow_pickle=False))
        blob["version"] = np.int64(999)
        np.savez(path, **blob)
        with pytest.raises(ValueError, match="version"):
            load_dataset(path)
