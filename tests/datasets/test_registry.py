"""Unit tests for the paper dataset registry."""

import pytest

from repro.datasets import (
    PAPER_CARDINALITIES,
    PAPER_PAIR_NAMES,
    make_paper_dataset,
    make_paper_pair,
    paper_pairs,
)
from repro.geometry import Rect


class TestCardinalities:
    def test_paper_values(self):
        assert PAPER_CARDINALITIES["TS"] == 194_971
        assert PAPER_CARDINALITIES["TCB"] == 556_696
        assert PAPER_CARDINALITIES["CAS"] == 98_451
        assert PAPER_CARDINALITIES["CAR"] == 2_249_727
        assert PAPER_CARDINALITIES["SP"] == 62_555
        assert PAPER_CARDINALITIES["SPG"] == 79_607
        assert PAPER_CARDINALITIES["SCRC"] == 100_000
        assert PAPER_CARDINALITIES["SURA"] == 100_000

    @pytest.mark.parametrize("name", sorted(PAPER_CARDINALITIES))
    def test_scaling(self, name):
        ds = make_paper_dataset(name, scale=200)
        assert len(ds) == max(1, round(PAPER_CARDINALITIES[name] / 200))
        assert ds.name == name

    def test_cardinality_ratio_preserved(self):
        cas = make_paper_dataset("CAS", scale=200)
        car = make_paper_dataset("CAR", scale=200)
        paper_ratio = PAPER_CARDINALITIES["CAR"] / PAPER_CARDINALITIES["CAS"]
        assert len(car) / len(cas) == pytest.approx(paper_ratio, rel=0.01)


class TestPairs:
    def test_pair_names(self):
        assert PAPER_PAIR_NAMES == (
            ("TS", "TCB"),
            ("CAS", "CAR"),
            ("SP", "SPG"),
            ("SCRC", "SURA"),
        )

    def test_paper_pairs_keys(self):
        pairs = paper_pairs(scale=500)
        assert sorted(pairs) == ["CAS_CAR", "SCRC_SURA", "SP_SPG", "TS_TCB"]

    def test_shared_unit_extent(self):
        ds1, ds2 = make_paper_pair("SCRC", "SURA", scale=500)
        assert ds1.extent == ds2.extent == Rect.unit()

    def test_deterministic_across_calls(self):
        a1, _ = make_paper_pair("TS", "TCB", scale=500)
        a2, _ = make_paper_pair("TS", "TCB", scale=500)
        assert a1.rects == a2.rects

    def test_same_dataset_consistent_across_pairs(self):
        """TS built for any purpose is always the same rectangles."""
        via_pair, _ = make_paper_pair("TS", "TCB", scale=500)
        direct = make_paper_dataset("TS", scale=500)
        assert via_pair.rects == direct.rects


class TestValidation:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown paper dataset"):
            make_paper_dataset("NOPE")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            make_paper_dataset("TS", scale=0)

    def test_minimum_one_item(self):
        ds = make_paper_dataset("SP", scale=10**9)
        assert len(ds) == 1
