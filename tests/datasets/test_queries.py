"""Unit tests for the query-workload generators."""

import numpy as np
import pytest

from repro.datasets import (
    data_centered_queries,
    make_clustered,
    make_uniform,
    query_grid,
    uniform_queries,
)
from repro.geometry import Rect


class TestUniformQueries:
    def test_count_and_size(self):
        queries = uniform_queries(40, width_fraction=0.2, seed=0)
        assert len(queries) == 40
        for q in queries:
            assert q.width == pytest.approx(0.2)
            assert q.height == pytest.approx(0.2)

    def test_inside_extent(self):
        extent = Rect(-3, 5, 9, 11)
        for q in uniform_queries(60, extent=extent, width_fraction=0.3, seed=1):
            assert extent.contains_rect(q)

    def test_anisotropic_windows(self):
        queries = uniform_queries(5, width_fraction=0.4, height_fraction=0.1, seed=2)
        assert queries[0].width == pytest.approx(0.4)
        assert queries[0].height == pytest.approx(0.1)

    def test_reproducible(self):
        assert uniform_queries(5, seed=3) == uniform_queries(5, seed=3)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            uniform_queries(5, width_fraction=0.0)
        with pytest.raises(ValueError):
            uniform_queries(5, width_fraction=1.5)


class TestDataCenteredQueries:
    def test_follows_data_distribution(self):
        ds = make_clustered(3000, seed=4, center=(0.3, 0.3), spread=0.03)
        queries = data_centered_queries(ds, 100, width_fraction=0.05, seed=5)
        centers = np.array([q.center for q in queries])
        assert abs(centers[:, 0].mean() - 0.3) < 0.05
        assert abs(centers[:, 1].mean() - 0.3) < 0.05

    def test_inside_extent(self):
        ds = make_uniform(500, seed=6)
        for q in data_centered_queries(ds, 50, width_fraction=0.3, seed=7):
            assert ds.extent.contains_rect(q)

    def test_empty_dataset_rejected(self):
        from repro.datasets import SpatialDataset
        from repro.geometry import RectArray

        empty = SpatialDataset("e", RectArray.empty())
        with pytest.raises(ValueError):
            data_centered_queries(empty, 5)

    def test_biased_vs_uniform_hit_counts(self):
        """On skewed data, biased queries see far more items on average."""
        ds = make_clustered(5000, seed=8, spread=0.05)
        biased = data_centered_queries(ds, 50, width_fraction=0.05, seed=9)
        uniform = uniform_queries(50, width_fraction=0.05, seed=9)

        def mean_hits(queries):
            return np.mean([ds.rects.intersects_rect(q).sum() for q in queries])

        assert mean_hits(biased) > 3 * mean_hits(uniform)


class TestQueryGrid:
    def test_exact_tiling(self):
        tiles = list(query_grid(4))
        assert len(tiles) == 16
        total_area = sum(t.area for t in tiles)
        assert total_area == pytest.approx(1.0)

    def test_coverage_shrinks_tiles(self):
        tiles = list(query_grid(2, coverage=0.5))
        assert tiles[0].width == pytest.approx(0.25)

    def test_tiles_disjoint_under_coverage(self):
        tiles = list(query_grid(3, coverage=0.8))
        for i in range(len(tiles)):
            for j in range(i + 1, len(tiles)):
                inter = tiles[i].intersection(tiles[j])
                assert inter is None or inter.area == 0

    def test_custom_extent(self):
        extent = Rect(10, 10, 14, 18)
        tiles = list(query_grid(2, extent=extent))
        assert all(extent.contains_rect(t) for t in tiles)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(query_grid(0))
        with pytest.raises(ValueError):
            list(query_grid(2, coverage=0))
