"""Meta-test: every public item carries a doc comment.

The deliverable contract requires doc comments on every public item;
this test enforces it mechanically, so documentation can't silently rot.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.geometry",
    "repro.hilbert",
    "repro.rtree",
    "repro.join",
    "repro.datasets",
    "repro.sampling",
    "repro.fractal",
    "repro.histograms",
    "repro.core",
    "repro.eval",
    "repro.service",
    "repro.perf",
    "repro.serve",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not (
                        attr.__doc__ and attr.__doc__.strip()
                    ):
                        undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"
