"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Rect, RectArray


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_rects(
    rng: np.random.Generator,
    n: int,
    *,
    extent: Rect = Rect.unit(),
    max_side: float = 0.05,
) -> RectArray:
    """Random rectangles fully inside ``extent`` (shared test helper)."""
    w = rng.uniform(0, max_side, size=n) * extent.width
    h = rng.uniform(0, max_side, size=n) * extent.height
    x0 = extent.xmin + rng.uniform(0, 1, size=n) * (extent.width - w)
    y0 = extent.ymin + rng.uniform(0, 1, size=n) * (extent.height - h)
    return RectArray(x0, y0, x0 + w, y0 + h)


@pytest.fixture
def small_rects(rng) -> RectArray:
    return random_rects(rng, 200)


@pytest.fixture
def two_rect_sets(rng) -> tuple[RectArray, RectArray]:
    return random_rects(rng, 300), random_rects(rng, 400)
