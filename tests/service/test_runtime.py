"""Unit tests for the cooperative runtime (deadlines, checkpoints, scopes)."""

import time

import pytest

from repro.errors import EstimationTimeout
from repro.runtime import (
    Deadline,
    active_deadline,
    checkpoint,
    mutate,
    runtime_scope,
)


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline(None)
        assert not d.expired
        assert d.remaining == float("inf")
        d.check("anywhere")  # no raise

    def test_zero_budget_expires_immediately(self):
        d = Deadline(0.0)
        assert d.expired
        with pytest.raises(EstimationTimeout) as info:
            d.check("gh.build.corners")
        assert info.value.stage == "gh.build.corners"
        assert "gh.build.corners" in str(info.value)

    def test_positive_budget_counts_down(self):
        d = Deadline(60.0)
        assert not d.expired
        assert 0 < d.remaining <= 60.0
        d.check()  # no raise

    def test_expiry_after_sleep(self):
        d = Deadline(0.005)
        time.sleep(0.02)
        assert d.expired

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            Deadline(-1.0)

    def test_timeout_is_builtin_timeout_error(self):
        # The taxonomy must stay catchable via the builtin hierarchy.
        with pytest.raises(TimeoutError):
            Deadline(0.0).check("x")


class TestCheckpoint:
    def test_noop_without_scope(self):
        checkpoint("gh.build.corners")  # must be free and silent
        assert mutate("gh.build.cells", 42) == 42

    def test_deadline_enforced_in_scope(self):
        with runtime_scope(deadline=Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                checkpoint("sampling.join")

    def test_active_deadline_visibility(self):
        assert active_deadline() is None
        d = Deadline(30.0)
        with runtime_scope(deadline=d):
            assert active_deadline() is d
        assert active_deadline() is None

    def test_hook_checkpoint_and_mutate(self):
        class Recorder:
            def __init__(self):
                self.stages = []

            def on_checkpoint(self, stage):
                self.stages.append(stage)

            def on_mutate(self, stage, value):
                return value * 2

        hook = Recorder()
        with runtime_scope(hook=hook):
            checkpoint("a.b")
            assert mutate("a.c", 21) == 42
        assert hook.stages == ["a.b"]

    def test_nested_scopes_compose(self):
        # Inner scope adds a hook; outer deadline still governs.
        class Hook:
            def on_checkpoint(self, stage):
                pass

        d = Deadline(0.0)
        with runtime_scope(deadline=d):
            with runtime_scope(hook=Hook()):
                assert active_deadline() is d
                with pytest.raises(EstimationTimeout):
                    checkpoint("x")

    def test_scope_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with runtime_scope(deadline=Deadline(10.0)):
                raise RuntimeError("boom")
        assert active_deadline() is None
