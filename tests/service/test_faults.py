"""Unit tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.errors import EstimationTimeout, TransientEstimationError
from repro.runtime import Deadline, checkpoint, mutate, runtime_scope
from repro.service import FaultPlan, FaultSpec, inject_faults, nan_corruption


class TestFaultSpec:
    def test_exact_and_prefix_matching(self):
        spec = FaultSpec("gh.build")
        assert spec.matches("gh.build")
        assert spec.matches("gh.build.corners")
        assert not spec.matches("gh.builder")  # prefix must be dotted
        assert not spec.matches("ph.build")

    def test_times_bounds_firing(self):
        spec = FaultSpec("s", times=1)
        assert spec.matches("s")
        spec.fired = 1
        assert not spec.matches("s")

    def test_default_exception_is_transient(self):
        exc = FaultSpec("s").make_exception()
        assert isinstance(exc, TransientEstimationError)

    def test_custom_exception_factory(self):
        spec = FaultSpec("s", exception=lambda: RuntimeError("custom"))
        assert str(spec.make_exception()) == "custom"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec("s", kind="meteor")


class TestFaultPlan:
    def test_error_injection_at_checkpoint(self):
        plan = FaultPlan([FaultSpec("gh.build")])
        with inject_faults(plan):
            with pytest.raises(TransientEstimationError, match="injected"):
                checkpoint("gh.build.corners")
        assert len(plan.activations) == 1
        assert plan.activations[0].stage == "gh.build.corners"

    def test_unmatched_stage_untouched(self):
        plan = FaultPlan([FaultSpec("gh.build")])
        with inject_faults(plan):
            checkpoint("ph.build.contained")  # no raise
        assert plan.activations == []

    def test_times_one_models_transient(self):
        plan = FaultPlan([FaultSpec("s", times=1)])
        with inject_faults(plan):
            with pytest.raises(TransientEstimationError):
                checkpoint("s")
            checkpoint("s")  # second hit passes: the fault was transient
        assert len(plan.activations) == 1

    def test_latency_observed_by_deadline(self):
        plan = FaultPlan([FaultSpec("slow", kind="latency", seconds=0.02)])
        with runtime_scope(deadline=Deadline(0.005)):
            with inject_faults(plan):
                with pytest.raises(EstimationTimeout):
                    checkpoint("slow")

    def test_corruption_via_mutate(self):
        plan = FaultPlan([FaultSpec("cells", kind="corrupt")])
        arrays = (np.ones(4), np.ones(4))
        with inject_faults(plan):
            out = mutate("cells", arrays)
        assert all(np.isnan(a).all() for a in out)
        # corrupt rules never fire at plain checkpoints
        plan.reset()
        with inject_faults(plan):
            checkpoint("cells")
        assert plan.activations == []

    def test_custom_corruption(self):
        plan = FaultPlan([FaultSpec("c", kind="corrupt", corruption=lambda v: v * -1)])
        with inject_faults(plan):
            assert mutate("c", 5) == -5

    def test_reset_clears_counters_and_log(self):
        plan = FaultPlan([FaultSpec("s", times=1)])
        with inject_faults(plan):
            with pytest.raises(TransientEstimationError):
                checkpoint("s")
        plan.reset()
        assert plan.activations == []
        assert plan.specs[0].fired == 0
        with inject_faults(plan):
            with pytest.raises(TransientEstimationError):
                checkpoint("s")


class TestNanCorruption:
    def test_arrays_and_nesting(self):
        out = nan_corruption((np.ones(3), [np.zeros(2)]))
        assert np.isnan(out[0]).all()
        assert np.isnan(out[1][0]).all()

    def test_non_arrays_pass_through(self):
        assert nan_corruption("scalar") == "scalar"


class TestBuildPipelinesCarryHooks:
    """The named stages are actually wired through the real builds."""

    def test_gh_build_stage_fires(self, rng):
        from repro.datasets import SpatialDataset
        from repro.histograms import GHHistogram
        from tests.conftest import random_rects

        ds = SpatialDataset("d", random_rects(rng, 30))
        plan = FaultPlan([FaultSpec("gh.build.edges")])
        with inject_faults(plan):
            with pytest.raises(TransientEstimationError):
                GHHistogram.build(ds, 3)

    def test_gh_corruption_poisons_estimate(self, rng):
        from repro.datasets import SpatialDataset
        from repro.histograms import GHHistogram
        from tests.conftest import random_rects

        ds = SpatialDataset("d", random_rects(rng, 30))
        plan = FaultPlan([FaultSpec("gh.build.cells", kind="corrupt")])
        with inject_faults(plan):
            h = GHHistogram.build(ds, 3)
        assert np.isnan(h.estimate_selectivity(h))

    def test_ph_build_stage_fires(self, rng):
        from repro.datasets import SpatialDataset
        from repro.histograms import PHHistogram
        from tests.conftest import random_rects

        ds = SpatialDataset("d", random_rects(rng, 30))
        plan = FaultPlan([FaultSpec("ph.build.contained")])
        with inject_faults(plan):
            with pytest.raises(TransientEstimationError):
                PHHistogram.build(ds, 3)

    def test_sampling_stages_fire_in_order(self, rng):
        from repro.datasets import SpatialDataset
        from repro.sampling import SamplingJoinEstimator
        from tests.conftest import random_rects

        a = SpatialDataset("a", random_rects(rng, 40))
        b = SpatialDataset("b", random_rects(rng, 40))
        plan = FaultPlan([FaultSpec("sampling.join")])
        with inject_faults(plan):
            with pytest.raises(TransientEstimationError):
                SamplingJoinEstimator("rs", 0.5, 0.5).estimate(a, b)
        assert [a_.stage for a_ in plan.activations] == ["sampling.join"]
