"""Chaos and behavior tests for :class:`ResilientEstimator`.

The acceptance bar (ISSUE 1): with faults injected at every stage —
exception, latency past the deadline, corrupted cell statistics —
``ResilientEstimator.estimate`` never raises, always returns a finite
estimate in ``[0, inf)`` with a provenance record naming the fallback
rung used, and a no-fault run is bit-identical to calling the
underlying estimator directly.
"""

import math
import warnings

import numpy as np
import pytest

from repro.core.estimator import (
    GHEstimator,
    ParametricEstimator,
    PHEstimator,
    SamplingEstimatorAdapter,
    create_estimator,
)
from repro.datasets import SpatialDataset
from repro.errors import DegradedResultWarning, InvalidDatasetError
from repro.geometry import Rect, RectArray
from repro.service import (
    FaultPlan,
    FaultSpec,
    ResilientEstimator,
    default_fallback_chain,
    inject_faults,
)
from tests.conftest import random_rects

#: Every cooperative checkpoint threaded through the library.
CHECKPOINT_STAGES = [
    "gh.build.corners",
    "gh.build.overlaps",
    "gh.build.edges",
    "ph.build.contained",
    "ph.build.spanning",
    "gh_basic.build",
    "sampling.pick",
    "sampling.build",
    "sampling.join",
]

#: Every per-cell statistics mutation point (corruption targets).
MUTATE_STAGES = ["gh.build.cells", "ph.build.cells", "gh_basic.build.cells"]


@pytest.fixture
def pair(rng):
    a = SpatialDataset("a", random_rects(rng, 150), Rect.unit())
    b = SpatialDataset("b", random_rects(rng, 200), Rect.unit())
    return a, b


def assert_sane(result):
    """The resilience invariant: finite, non-negative, with provenance."""
    assert isinstance(result.selectivity, float)
    assert math.isfinite(result.selectivity)
    assert result.selectivity >= 0.0
    assert result.provenance.rung  # names who answered
    assert result.provenance.attempts_total >= 0


class TestNoFaultPath:
    @pytest.mark.parametrize(
        "primary",
        [
            GHEstimator(level=4),
            PHEstimator(level=3),
            ParametricEstimator(),
            SamplingEstimatorAdapter(method="rs", fraction1=0.5, fraction2=0.5),
        ],
        ids=["gh", "ph", "parametric", "sampling"],
    )
    def test_bit_identical_to_direct_call(self, pair, primary):
        a, b = pair
        direct = primary.estimate(a, b)
        result = ResilientEstimator(primary).estimate_detailed(a, b)
        assert result.selectivity == direct  # exact, not approx
        assert result.provenance.rung_index == 0
        assert not result.provenance.degraded
        assert result.provenance.reason == ""

    def test_no_warning_on_clean_run(self, pair):
        a, b = pair
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedResultWarning)
            ResilientEstimator(GHEstimator(level=3)).estimate(a, b)

    def test_single_attempt_recorded(self, pair):
        a, b = pair
        result = ResilientEstimator(GHEstimator(level=3)).estimate_detailed(*pair)
        assert [a_.outcome for a_ in result.provenance.attempts] == ["ok"]


class TestChaos:
    """Faults at every stage: the service must absorb all of them."""

    @pytest.mark.parametrize("stage", CHECKPOINT_STAGES)
    def test_exception_at_every_stage(self, pair, stage):
        est = ResilientEstimator(GHEstimator(level=4), retries=0)
        plan = FaultPlan([FaultSpec(stage)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(plan):
                result = est.estimate_detailed(*pair)
        assert_sane(result)

    @pytest.mark.parametrize("stage", MUTATE_STAGES)
    def test_corruption_at_every_mutation_point(self, pair, stage):
        est = ResilientEstimator(GHEstimator(level=4), retries=0)
        plan = FaultPlan([FaultSpec(stage, kind="corrupt")])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(plan):
                result = est.estimate_detailed(*pair)
        assert_sane(result)

    @pytest.mark.parametrize("stage", ["gh.build", "ph.build", "sampling"])
    def test_latency_past_deadline(self, pair, stage):
        est = ResilientEstimator(
            GHEstimator(level=4), deadline_s=0.01, retries=0,
            chain=(
                GHEstimator(level=4),
                SamplingEstimatorAdapter(method="rs", fraction1=0.5, fraction2=0.5),
                PHEstimator(level=2),
                ParametricEstimator(),
            ),
        )
        plan = FaultPlan([FaultSpec(stage, kind="latency", seconds=0.05)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(plan):
                result = est.estimate_detailed(*pair)
        assert_sane(result)

    def test_everything_rigged_at_once_still_answers(self, pair):
        """Exception + latency + corruption across all stages at once."""
        specs = [FaultSpec(s) for s in CHECKPOINT_STAGES]
        specs += [FaultSpec(s, kind="corrupt") for s in MUTATE_STAGES]
        est = ResilientEstimator(GHEstimator(level=5), deadline_s=0.5, retries=1)
        plan = FaultPlan(specs)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(plan):
                result = est.estimate_detailed(*pair)
        assert_sane(result)
        # Only the checkpoint-free parametric floor can have answered.
        assert result.provenance.rung == "parametric"
        assert result.provenance.degraded
        # It should still be a *useful* estimate, not a panic zero.
        assert result.selectivity > 0.0

    def test_degradation_order_respected(self, pair):
        """Rungs are consulted strictly in chain order as faults knock
        them out one class at a time."""
        est = ResilientEstimator(GHEstimator(level=5), retries=0)
        chain_names = [
            "gh(level=5)", "gh(level=2)", "ph(level=4)", "parametric",
        ]
        assert [  # default chain shape for GH level 5
            n for n in chain_names
        ] == [f"{r.name}(level={r.level})" if hasattr(r, "level") else r.name
              for r in est.chain]

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            # Nothing faulted: primary answers.
            assert est.estimate_detailed(*pair).provenance.rung == chain_names[0]
            # GH knocked out: the next distinct scheme (PH) answers.
            with inject_faults(FaultPlan([FaultSpec("gh.build")])):
                assert est.estimate_detailed(*pair).provenance.rung == chain_names[2]
            # GH and PH knocked out: parametric answers.
            with inject_faults(
                FaultPlan([FaultSpec("gh.build"), FaultSpec("ph.build")])
            ):
                assert est.estimate_detailed(*pair).provenance.rung == chain_names[3]

    def test_estimate_never_raises_smoke(self, pair):
        """Plain .estimate under total chaos returns a float, full stop."""
        specs = [FaultSpec(s) for s in CHECKPOINT_STAGES]
        est = ResilientEstimator(GHEstimator(level=4), retries=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(FaultPlan(specs)):
                value = est.estimate(*pair)
        assert math.isfinite(value) and value >= 0.0


class TestRetry:
    def test_transient_fault_survived_by_retry(self, pair):
        est = ResilientEstimator(GHEstimator(level=4), retries=1)
        plan = FaultPlan([FaultSpec("gh.build.corners", times=1)])
        with inject_faults(plan):
            result = est.estimate_detailed(*pair)
        # Primary answered on the second attempt — degraded is False
        # because the *requested* estimator produced the answer.
        assert result.provenance.rung_index == 0
        assert [a.outcome for a in result.provenance.attempts] == ["error", "ok"]

    def test_retry_exhaustion_falls_back(self, pair):
        est = ResilientEstimator(GHEstimator(level=4), retries=1)
        plan = FaultPlan([FaultSpec("gh.build.corners", times=4)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(plan):
                result = est.estimate_detailed(*pair)
        assert result.provenance.rung_index > 0
        # Both GH rungs burned both attempts before PH answered.
        gh_attempts = [a for a in result.provenance.attempts if a.rung.startswith("gh")]
        assert len(gh_attempts) == 4

    def test_nontransient_fault_not_retried(self, pair):
        est = ResilientEstimator(GHEstimator(level=4), retries=3)
        plan = FaultPlan(
            [FaultSpec("gh.build.corners", exception=lambda: RuntimeError("hard"))]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(plan):
                result = est.estimate_detailed(*pair)
        primary_attempts = [a for a in result.provenance.attempts if a.rung_index == 0]
        assert len(primary_attempts) == 1  # no retry on non-transient


class TestDeadline:
    def test_zero_deadline_degrades_to_parametric(self, pair):
        est = ResilientEstimator(GHEstimator(level=5), deadline_s=0.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = est.estimate_detailed(*pair)
        assert result.provenance.rung == "parametric"
        assert all(
            a.outcome == "timeout" for a in result.provenance.attempts[:-1]
        )
        assert result.selectivity > 0.0

    def test_generous_deadline_hits_primary(self, pair):
        est = ResilientEstimator(GHEstimator(level=4), deadline_s=60.0)
        result = est.estimate_detailed(*pair)
        assert result.provenance.rung_index == 0

    def test_backoff_pause_clamped_to_deadline_budget(self, pair):
        """Regression: a retry backoff longer than the remaining deadline
        used to sleep through the whole budget before discovering the
        timeout.  The pause must be skipped (and the retry abandoned)
        when it cannot fit, so fallback happens while budget remains."""
        import time

        est = ResilientEstimator(
            GHEstimator(level=4), retries=3, backoff_s=5.0, deadline_s=0.3
        )
        plan = FaultPlan([FaultSpec("gh.build.corners", times=99)])
        started = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            with inject_faults(plan):
                result = est.estimate_detailed(*pair)
        elapsed = time.perf_counter() - started
        # Without the clamp this takes >= 5s (the first pause alone).
        assert elapsed < 2.0
        assert_sane(result)

    def test_backoff_still_pauses_when_budget_allows(self, pair):
        est = ResilientEstimator(GHEstimator(level=4), retries=1, backoff_s=0.01)
        plan = FaultPlan([FaultSpec("gh.build.corners", times=1)])
        with inject_faults(plan):
            result = est.estimate_detailed(*pair)
        # The retry (after a fitting pause) still happens and answers.
        assert [a.outcome for a in result.provenance.attempts] == ["error", "ok"]


class TestValidationIntegration:
    def test_repaired_inputs_are_estimated_and_flagged(self, rng):
        # Inverted row smuggled past construction via validate=False
        # (the aggregate bounds stay valid, so __post_init__ passes).
        rects = RectArray(
            np.array([0.1, 0.5, 0.3]),
            np.array([0.1, 0.2, 0.3]),
            np.array([0.2, 0.3, 0.4]),  # row 1: xmin 0.5 > xmax 0.3
            np.array([0.2, 0.3, 0.4]),
            validate=False,
        )
        bad = SpatialDataset("bad", rects, Rect.unit())
        good = SpatialDataset("good", random_rects(rng, 50), Rect.unit())
        est = ResilientEstimator(GHEstimator(level=3))
        with pytest.warns(DegradedResultWarning):
            result = est.estimate_detailed(bad, good)
        assert_sane(result)
        assert result.provenance.degraded
        assert result.provenance.validation[0].repaired

    def test_mismatched_extents_reconciled(self, rng):
        a = SpatialDataset("a", random_rects(rng, 30), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 30), Rect(0, 0, 2, 2))
        est = ResilientEstimator(GHEstimator(level=3))
        with pytest.warns(DegradedResultWarning):
            result = est.estimate_detailed(a, b)
        assert_sane(result)

    def test_strict_policy_surfaces_invalid_input(self, rng):
        a = SpatialDataset("a", random_rects(rng, 10), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 10), Rect(0, 0, 2, 2))
        est = ResilientEstimator(GHEstimator(level=3), validation="strict")
        with pytest.raises(InvalidDatasetError):
            est.estimate(a, b)

    def test_empty_inputs_answer_zero(self):
        empty = SpatialDataset("e", RectArray.empty(), Rect.unit())
        est = ResilientEstimator(GHEstimator(level=3))
        result = est.estimate_detailed(empty, empty)
        assert result.selectivity == 0.0
        assert not result.provenance.degraded  # defined semantics, not failure


class TestConfiguration:
    def test_registry_construction(self):
        est = create_estimator("resilient", primary="gh", level=4, deadline_s=1.0)
        assert isinstance(est, ResilientEstimator)
        assert est.primary.level == 4
        assert est.deadline_s == 1.0

    def test_default_chain_shapes(self):
        gh_chain = default_fallback_chain(GHEstimator(level=7))
        assert [type(r).__name__ for r in gh_chain] == [
            "GHEstimator", "GHEstimator", "PHEstimator", "ParametricEstimator",
        ]
        assert gh_chain[1].level < gh_chain[0].level
        ph_chain = default_fallback_chain(PHEstimator(level=5))
        assert [type(r).__name__ for r in ph_chain] == [
            "PHEstimator", "PHEstimator", "ParametricEstimator",
        ]
        sampling_chain = default_fallback_chain(
            SamplingEstimatorAdapter(method="rs")
        )
        assert type(sampling_chain[-1]).__name__ == "ParametricEstimator"
        parametric_chain = default_fallback_chain(ParametricEstimator())
        assert len(parametric_chain) == 1

    def test_instance_kwargs_conflict_rejected(self):
        with pytest.raises(ValueError, match="kind name"):
            ResilientEstimator(GHEstimator(level=3), level=5)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            ResilientEstimator("gh", retries=-1)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError, match="chain"):
            ResilientEstimator("gh", chain=())

    def test_bad_validation_policy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="validation policy"):
            ResilientEstimator("gh", validation="yolo")

    def test_estimate_pairs_inherited_semantics(self, pair):
        a, b = pair
        est = ResilientEstimator(GHEstimator(level=3))
        assert est.estimate_pairs(a, b) == est.estimate(a, b) * len(a) * len(b)

    def test_repr_shows_chain(self):
        text = repr(ResilientEstimator(GHEstimator(level=5), deadline_s=0.5))
        assert "gh(level=5)" in text and "parametric" in text
