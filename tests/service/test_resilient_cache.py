"""ResilientEstimator × HistogramCache: build-free fallbacks, clean reuse."""

from __future__ import annotations

import pytest

from repro.core.estimator import GHEstimator, JoinSelectivityEstimator
from repro.datasets import make_clustered, make_uniform
from repro.errors import DegradedResultWarning, TransientEstimationError
from repro.histograms import GHHistogram
from repro.perf import CachedEstimator, HistogramCache
from repro.service import FaultPlan, FaultSpec, ResilientEstimator, inject_faults


@pytest.fixture
def pair():
    return make_uniform(800, seed=21), make_clustered(800, seed=22)


class _AlwaysFails(JoinSelectivityEstimator):
    """Primary rung rigged to fail so the chain must degrade."""

    name = "rigged"

    def estimate(self, ds1, ds2) -> float:
        """Unconditionally transient-fail."""
        raise TransientEstimationError("rigged primary")


def _count_gh_builds(monkeypatch):
    calls = []
    original = GHHistogram.build.__func__

    def counting(cls, dataset, level, *, extent=None):
        calls.append((dataset.name, level))
        return original(cls, dataset, level, extent=extent)

    monkeypatch.setattr(GHHistogram, "build", classmethod(counting))
    return calls


class TestCoarserRungDerivation:
    def test_fallback_rung_derives_instead_of_rebuilding(self, pair, monkeypatch):
        """The acceptance claim: with a finer GH cached, the coarser-GH
        fallback rung performs zero data scans — its histograms are
        2×2-pooled from the cached level-6 files."""
        ds1, ds2 = pair
        cache = HistogramCache()
        cache.get_or_build(ds1, "gh", 6)
        cache.get_or_build(ds2, "gh", 6)

        est = ResilientEstimator(
            GHEstimator(level=6),
            chain=(_AlwaysFails(), GHEstimator(level=3)),
            cache=cache,
            retries=0,
        )
        calls = _count_gh_builds(monkeypatch)
        with pytest.warns(DegradedResultWarning):
            result = est.estimate_detailed(ds1, ds2)
        assert calls == []  # no rebuild anywhere in the chain
        assert cache.stats.derivations == 2
        assert result.provenance.rung == "gh(level=3)"
        assert result.selectivity == pytest.approx(
            GHEstimator(level=3).estimate(ds1, ds2), rel=1e-9
        )

    def test_chain_rungs_are_cache_wrapped(self, pair):
        cache = HistogramCache()
        est = ResilientEstimator("gh", level=6, cache=cache)
        wrapped = [r for r in est.chain if isinstance(r, CachedEstimator)]
        # gh(6), gh(coarser), and ph rungs all prepare through the cache.
        assert len(wrapped) == 3
        assert [r.name for r in wrapped] == ["gh", "gh", "ph"]

    def test_without_cache_chain_is_untouched(self):
        est = ResilientEstimator("gh", level=6)
        assert not any(isinstance(r, CachedEstimator) for r in est.chain)


class TestRepeatCalls:
    def test_second_call_is_all_hits(self, pair, monkeypatch):
        ds1, ds2 = pair
        cache = HistogramCache()
        est = ResilientEstimator("gh", level=5, cache=cache)
        first = est.estimate(ds1, ds2)
        calls = _count_gh_builds(monkeypatch)
        second = est.estimate(ds1, ds2)
        assert calls == []
        assert second == first
        assert cache.stats.hits >= 2

    def test_cached_answer_matches_uncached(self, pair):
        ds1, ds2 = pair
        cached = ResilientEstimator("gh", level=5, cache=HistogramCache())
        plain = ResilientEstimator("gh", level=5)
        assert cached.estimate(ds1, ds2) == plain.estimate(ds1, ds2)


class TestFaultHygiene:
    def test_corrupted_build_never_poisons_the_cache(self, pair):
        """A fault-corrupted build must not be retained: the next clean
        call rebuilds and answers exactly what a cache-less estimator
        would."""
        ds1, ds2 = pair
        cache = HistogramCache()
        est = ResilientEstimator("gh", level=5, cache=cache, retries=0)
        plan = FaultPlan([FaultSpec(stage="gh.build.cells", kind="corrupt")])
        with inject_faults(plan), pytest.warns(DegradedResultWarning):
            degraded = est.estimate_detailed(ds1, ds2)
        assert degraded.provenance.rung_index > 0  # NaN stats were rejected
        assert len(cache) == 0  # nothing poisoned was retained
        clean = est.estimate_detailed(ds1, ds2)
        assert clean.provenance.rung == "gh(level=5)"
        assert clean.selectivity == ResilientEstimator("gh", level=5).estimate(ds1, ds2)
