"""Unit tests for the input-validation/repair pass."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.errors import InvalidDatasetError
from repro.geometry import Rect, RectArray
from repro.service import (
    check_coords,
    coerce_dataset,
    validate_dataset,
    validate_pair,
)
from tests.conftest import random_rects


class TestCheckCoords:
    def test_clean(self):
        coords = np.array([[0.1, 0.1, 0.2, 0.2], [0.3, 0.3, 0.4, 0.4]])
        assert check_coords(coords) == []

    def test_nan_and_inf_flagged(self):
        coords = np.array([[0.1, np.nan, 0.2, 0.2], [0.1, 0.1, np.inf, 0.2]])
        issues = check_coords(coords)
        assert [i.code for i in issues] == ["nonfinite-coords"]
        assert issues[0].count == 2

    def test_inverted_flagged(self):
        coords = np.array([[0.5, 0.1, 0.2, 0.2]])  # xmin > xmax
        issues = check_coords(coords)
        assert [i.code for i in issues] == ["inverted-bounds"]

    def test_bad_shape_raises(self):
        with pytest.raises(InvalidDatasetError, match=r"\(n, 4\)"):
            check_coords(np.ones((3, 3)))

    def test_empty_is_clean(self):
        assert check_coords(np.empty((0, 4))) == []


class TestCoerceDataset:
    def test_clean_passthrough(self):
        coords = np.array([[0.1, 0.1, 0.2, 0.2]])
        ds, report = coerce_dataset("ok", coords, Rect.unit())
        assert report.ok
        assert len(ds) == 1
        assert ds.extent == Rect.unit()

    def test_nonfinite_rows_dropped(self):
        coords = np.array([[0.1, 0.1, 0.2, 0.2], [np.nan, 0.1, 0.2, 0.2]])
        ds, report = coerce_dataset("d", coords, Rect.unit())
        assert len(ds) == 1
        assert report.dropped == 1
        assert any(i.code == "nonfinite-coords" and i.repaired for i in report.issues)

    def test_inverted_bounds_swapped(self):
        coords = np.array([[0.4, 0.5, 0.2, 0.1]])  # both axes inverted
        ds, report = coerce_dataset("d", coords, Rect.unit())
        assert ds.rects.xmin[0] == 0.2 and ds.rects.xmax[0] == 0.4
        assert ds.rects.ymin[0] == 0.1 and ds.rects.ymax[0] == 0.5
        assert any(i.code == "inverted-bounds" for i in report.issues)

    def test_outside_extent_clipped(self):
        coords = np.array([[-0.5, 0.1, 0.5, 0.2]])
        ds, report = coerce_dataset("d", coords, Rect.unit())
        assert ds.rects.xmin[0] == 0.0
        assert any(i.code == "outside-extent" for i in report.issues)

    def test_missing_extent_derived_from_data(self):
        coords = np.array([[1.0, 2.0, 3.0, 4.0], [2.0, 3.0, 5.0, 6.0]])
        ds, _ = coerce_dataset("d", coords, None)
        assert ds.extent == Rect(1.0, 2.0, 5.0, 6.0)

    def test_empty_input_reported(self):
        ds, report = coerce_dataset("d", np.empty((0, 4)), None)
        assert len(ds) == 0
        assert any(i.code == "empty-dataset" for i in report.issues)

    def test_strict_raises_on_nan(self):
        coords = np.array([[np.nan, 0.1, 0.2, 0.2]])
        with pytest.raises(InvalidDatasetError, match="NaN"):
            coerce_dataset("d", coords, Rect.unit(), policy="strict")

    def test_strict_raises_on_outside(self):
        coords = np.array([[-2.0, 0.1, 0.2, 0.2]])
        with pytest.raises(InvalidDatasetError, match="outside"):
            coerce_dataset("d", coords, Rect.unit(), policy="strict")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            coerce_dataset("d", np.empty((0, 4)), None, policy="yolo")


class TestValidateDataset:
    def test_clean_dataset_is_same_object(self, rng):
        ds = SpatialDataset("clean", random_rects(rng, 50), Rect.unit())
        out, report = validate_dataset(ds)
        assert out is ds  # bit-identical fast path: no copy, no rebuild
        assert report.ok

    def test_inverted_rows_repaired(self):
        # An inverted row can slip past construction when other rows keep
        # the aggregate bounds valid; build its RectArray unvalidated.
        rects = RectArray(
            np.array([0.1, 0.5]),
            np.array([0.1, 0.1]),
            np.array([0.2, 0.3]),  # second row: xmin 0.5 > xmax 0.3
            np.array([0.2, 0.2]),
            validate=False,
        )
        ds = SpatialDataset("inverted", rects, Rect.unit())
        out, report = validate_dataset(ds)
        assert len(out) == 2
        assert out.rects.xmin[1] == 0.3 and out.rects.xmax[1] == 0.5
        assert report.repaired
        assert any(i.code == "inverted-bounds" for i in report.issues)

    def test_inverted_rows_strict_raises(self):
        rects = RectArray(
            np.array([0.1, 0.5]),
            np.array([0.1, 0.1]),
            np.array([0.2, 0.3]),
            np.array([0.2, 0.2]),
            validate=False,
        )
        ds = SpatialDataset("inverted", rects, Rect.unit())
        with pytest.raises(InvalidDatasetError, match="inverted"):
            validate_dataset(ds, policy="strict")

    def test_empty_dataset_reported_not_raised(self):
        ds = SpatialDataset("empty", RectArray.empty(), Rect.unit())
        out, report = validate_dataset(ds)
        assert out is ds
        assert [i.code for i in report.issues] == ["empty-dataset"]
        assert not report.repaired

    def test_report_summary_mentions_issues(self):
        ds = SpatialDataset("empty", RectArray.empty(), Rect.unit())
        _, report = validate_dataset(ds)
        assert "empty-dataset" in report.summary()
        clean = SpatialDataset("c", RectArray.from_coords([[0.1, 0.1, 0.2, 0.2]]), Rect.unit())
        assert "clean" in validate_dataset(clean)[1].summary()


class TestValidatePair:
    def test_matching_extents_passthrough(self, rng):
        a = SpatialDataset("a", random_rects(rng, 20), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 20), Rect.unit())
        a2, b2, r1, r2 = validate_pair(a, b)
        assert a2 is a and b2 is b
        assert r1.ok and r2.ok

    def test_mismatched_extents_reconciled_to_union(self, rng):
        a = SpatialDataset("a", random_rects(rng, 20), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 20), Rect(0, 0, 2, 2))
        a2, b2, r1, r2 = validate_pair(a, b)
        assert a2.extent == b2.extent == Rect(0, 0, 2, 2)
        assert any(i.code == "extent-mismatch" for i in r1.issues)
        assert r1.repaired and r2.repaired

    def test_mismatched_extents_strict_raises(self, rng):
        a = SpatialDataset("a", random_rects(rng, 5), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 5), Rect(0, 0, 2, 2))
        with pytest.raises(InvalidDatasetError, match="different extents"):
            validate_pair(a, b, policy="strict")

    def test_reconciled_pair_estimable(self, rng):
        from repro import GHEstimator

        a = SpatialDataset("a", random_rects(rng, 30), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 30), Rect(0, 0, 2, 2))
        a2, b2, _, _ = validate_pair(a, b)
        assert GHEstimator(level=3).estimate(a2, b2) >= 0.0
