"""Unit tests for the adaptive timing helper."""

import time

from repro.eval import measure_seconds


class TestMeasureSeconds:
    def test_fast_function_repeated(self):
        calls = []
        result = measure_seconds(lambda: calls.append(1), min_total_seconds=0.01)
        assert len(calls) >= 3
        assert result >= 0

    def test_slow_function_not_over_repeated(self):
        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.02)

        measure_seconds(slow, min_repeats=1, min_total_seconds=0.01)
        assert len(calls) <= 2

    def test_mean_is_plausible(self):
        result = measure_seconds(lambda: time.sleep(0.005), min_repeats=3,
                                 min_total_seconds=0.0)
        assert 0.003 < result < 0.1

    def test_max_repeats_caps_runs(self):
        calls = []
        measure_seconds(
            lambda: calls.append(1),
            min_repeats=1,
            min_total_seconds=60.0,
            max_repeats=50,
        )
        assert len(calls) == 50
