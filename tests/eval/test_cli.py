"""Smoke tests of the ``python -m repro.eval`` command-line interface."""

import pytest

from repro.eval.__main__ import _parse_levels, main


class TestParseLevels:
    def test_range(self):
        assert _parse_levels("0-3") == [0, 1, 2, 3]

    def test_list(self):
        assert _parse_levels("0,3,7") == [0, 3, 7]

    def test_single(self):
        assert _parse_levels("5") == [5]


class TestBadArgumentsExitCleanly:
    """Bad --levels/--scale specs exit with code 2 and one line, not a
    traceback (ISSUE 1 CLI hardening)."""

    @pytest.mark.parametrize(
        "args",
        [
            ["fig7", "--levels", "abc"],
            ["fig7", "--levels", "9-3"],      # empty range
            ["fig7", "--levels", ","],         # selects nothing
            ["fig7", "--levels", "0-99"],      # beyond MAX_LEVEL
            ["fig7", "--scale", "zero"],
            ["fig7", "--scale", "0"],
            ["fig7", "--scale", "-5"],
            ["fig7", "--scale", "inf"],
            ["fig7", "--scale", "nan"],
        ],
    )
    def test_exit_code_2_one_line_message(self, args, capsys):
        with pytest.raises(SystemExit) as info:
            main(args)
        assert info.value.code == 2
        err = capsys.readouterr().err
        # argparse prints usage plus exactly one error line.
        error_lines = [l for l in err.splitlines() if "error:" in l]
        assert len(error_lines) == 1
        flag = args[1]
        assert flag.lstrip("-") in error_lines[0] or flag in error_lines[0]

    def test_good_args_still_parse(self):
        assert _parse_levels("0-2") == [0, 1, 2]


@pytest.mark.slow
class TestMain:
    """End-to-end CLI runs at an aggressive scale (tiny datasets)."""

    SCALE = "2000"

    def test_fig7(self, capsys):
        rc = main(["fig7", "--scale", self.SCALE, "--levels", "0,2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 7 — TS_TCB" in out
        assert "GH" in out and "PH" in out

    def test_fig6(self, capsys):
        rc = main(["fig6", "--scale", self.SCALE, "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 6 — SCRC_SURA" in out
        assert "RSWR" in out

    def test_out_file(self, capsys, tmp_path):
        target = tmp_path / "report.txt"
        rc = main(["fig7", "--scale", self.SCALE, "--levels", "1", "--out", str(target)])
        assert rc == 0
        assert "Figure 7" in target.read_text()

    def test_scheme_selection(self, capsys):
        rc = main(["fig7", "--scale", self.SCALE, "--levels", "1", "--schemes", "gh"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GH" in out
        assert "  PH " not in out

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        import csv as csv_mod

        from repro.datasets import make_uniform
        from repro.eval import prepare_pair, run_histogram_experiment, write_csv

        ctx = prepare_pair("X", make_uniform(300, seed=1), make_uniform(300, seed=2))
        cells = run_histogram_experiment([ctx], levels=(0, 1), schemes=("gh",))
        path = write_csv(cells, tmp_path / "fig7.csv")
        with open(path) as handle:
            rows = list(csv_mod.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["pair"] == "X"
        assert float(rows[0]["error_pct"]) >= 0

    def test_empty_rejected(self, tmp_path):
        from repro.eval import write_csv

        with pytest.raises(ValueError):
            write_csv([], tmp_path / "nope.csv")

    def test_mixed_types_rejected(self, tmp_path):
        from repro.eval import write_csv
        from repro.eval.harness import HistogramCell, SamplingCell

        a = SamplingCell("p", "1/1", "rs", 0.1, 1, 1, 1, 0.1)
        b = HistogramCell("p", "gh", 1, 0.1, 1, 1, 1, 1, 0.1, 0.1, 10)
        with pytest.raises(TypeError):
            write_csv([a, b], tmp_path / "nope.csv")

    def test_non_dataclass_rejected(self, tmp_path):
        from repro.eval import write_csv

        with pytest.raises(TypeError):
            write_csv([{"a": 1}], tmp_path / "nope.csv")

    def test_cli_csv_flag(self, tmp_path, capsys):
        rc = main([
            "fig7", "--scale", "2000", "--levels", "1", "--schemes", "gh",
            "--csv", str(tmp_path / "out"),
        ])
        assert rc == 0
        assert (tmp_path / "out" / "figure7.csv").exists()
