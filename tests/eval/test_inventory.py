"""Unit tests for the dataset-inventory report."""

import pytest

from repro.datasets import make_uniform
from repro.eval import prepare_pair, render_inventory, run_inventory


@pytest.fixture(scope="module")
def contexts():
    a = make_uniform(300, seed=130, name="A")
    b = make_uniform(400, seed=131, name="B")
    c = make_uniform(200, seed=132, name="C")
    return [prepare_pair("A_B", a, b), prepare_pair("B_C", b, c)]


class TestRunInventory:
    def test_datasets_deduplicated(self, contexts):
        dataset_rows, pair_rows = run_inventory(contexts)
        assert [r.name for r in dataset_rows] == ["A", "B", "C"]
        assert len(pair_rows) == 2

    def test_summary_values(self, contexts):
        dataset_rows, _ = run_inventory(contexts)
        a = next(r for r in dataset_rows if r.name == "A")
        assert a.count == 300
        assert a.coverage > 0

    def test_pair_ground_truth(self, contexts):
        _, pair_rows = run_inventory(contexts)
        ab = next(r for r in pair_rows if r.pair == "A_B")
        assert ab.count1 == 300 and ab.count2 == 400
        assert ab.actual_selectivity == pytest.approx(
            ab.actual_pairs / (300 * 400)
        )

    def test_render(self, contexts):
        text = render_inventory(*run_inventory(contexts))
        assert "Datasets" in text
        assert "Join pairs" in text
        assert "A_B" in text
