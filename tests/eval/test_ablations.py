"""Unit tests for the standalone ablation drivers."""

import pytest

from repro.datasets import make_clustered, make_uniform
from repro.eval import (
    prepare_pair,
    render_ablations,
    run_gh_variant_ablation,
    run_packing_ablation,
    run_ph_avgspan_ablation,
    run_sample_join_ablation,
)


@pytest.fixture(scope="module")
def context():
    a = make_uniform(1200, seed=80, mean_width=0.01, mean_height=0.01)
    b = make_clustered(1200, seed=81, mean_width=0.01, mean_height=0.01)
    return prepare_pair("U_C", a, b)


class TestGHVariantAblation:
    def test_shape(self, context):
        rows = run_gh_variant_ablation([context], levels=(3, 5))
        assert len(rows) == 4
        assert {r.variant for r in rows} == {"basic", "revised"}

    def test_revised_dominates(self, context):
        rows = run_gh_variant_ablation([context], levels=(3, 5, 7))
        by_level = {}
        for row in rows:
            by_level.setdefault(row.parameter, {})[row.variant] = row.error_pct
        for level, variants in by_level.items():
            assert variants["revised"] <= variants["basic"], level


class TestPHAvgSpanAblation:
    def test_correction_never_raises_estimate(self, context):
        rows = run_ph_avgspan_ablation([context], levels=(4, 6))
        # Uncorrected >= corrected estimate means: if truth is below the
        # corrected estimate, uncorrected error is larger; the sign can
        # flip otherwise, so only check rows exist and are finite.
        assert len(rows) == 4
        assert all(r.error_pct is not None for r in rows)


class TestSampleJoinAblation:
    def test_substrates_have_identical_errors(self, context):
        rows = run_sample_join_ablation([context], fractions=(0.2,))
        errors = {r.variant: r.error_pct for r in rows}
        assert errors["rtree"] == pytest.approx(errors["sweep"])


class TestPackingAblation:
    def test_all_variants_present_below_limit(self, context):
        rows = run_packing_ablation([context])
        variants = {r.variant for r in rows}
        assert variants == {"str", "hilbert", "dynamic", "dynamic-rstar"}
        assert {r.parameter for r in rows} == {"build", "join"}

    def test_dynamic_skipped_above_limit(self, context):
        rows = run_packing_ablation([context], dynamic_limit=10)
        assert "dynamic" not in {r.variant for r in rows}

    def test_bulk_builds_faster_than_dynamic(self, context):
        rows = run_packing_ablation([context])
        seconds = {
            (r.variant, r.parameter): r.seconds for r in rows
        }
        assert seconds[("str", "build")] < seconds[("dynamic", "build")]


class TestRendering:
    def test_render_groups_by_study_and_pair(self, context):
        rows = run_gh_variant_ablation([context], levels=(3,))
        text = render_ablations(rows)
        assert "Ablation [gh-variant] — U_C" in text
        assert "revised" in text and "basic" in text

    def test_render_handles_missing_error(self, context):
        rows = run_packing_ablation([context], dynamic_limit=10)
        text = render_ablations(rows)
        assert " - " in text or "-" in text
