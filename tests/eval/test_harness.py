"""Unit tests for the figure-reproduction harness."""

import math

import pytest

from repro.core import SampleCombo
from repro.datasets import make_clustered, make_uniform
from repro.eval import (
    prepare_pair,
    prepare_pairs,
    render_figure6,
    render_figure7,
    run_histogram_experiment,
    run_sampling_experiment,
)
from repro.join import actual_selectivity


@pytest.fixture(scope="module")
def context():
    a = make_uniform(1500, seed=40, mean_width=0.01, mean_height=0.01)
    b = make_clustered(1500, seed=41, mean_width=0.01, mean_height=0.01)
    return prepare_pair("U_C", a, b)


class TestPreparePair:
    def test_ground_truth_matches_exact_join(self, context):
        truth = actual_selectivity(context.ds1.rects, context.ds2.rects)
        assert context.actual_selectivity == pytest.approx(truth, rel=1e-12)
        assert context.actual_pairs == round(
            truth * len(context.ds1) * len(context.ds2)
        )

    def test_reference_costs_positive(self, context):
        assert context.join_seconds > 0
        assert context.build_seconds > 0
        assert context.rtree_bytes > 0

    def test_prepare_pairs_mapping(self):
        a = make_uniform(200, seed=1)
        b = make_uniform(200, seed=2)
        contexts = prepare_pairs({"X": (a, b), "Y": (b, a)})
        assert [c.name for c in contexts] == ["X", "Y"]


class TestSamplingExperiment:
    def test_shape_and_metrics(self, context):
        combos = (SampleCombo(10, 10), SampleCombo(100, 10))
        cells = run_sampling_experiment(
            [context], combos=combos, methods=("rs", "rswr"), repeats=2
        )
        assert len(cells) == 4
        for cell in cells:
            assert cell.pair == "U_C"
            assert cell.error_pct >= 0
            assert cell.est_time2_pct >= cell.est_time1_pct  # smaller denominator
            assert cell.seconds > 0

    def test_full_sample_near_zero_error(self, context):
        cells = run_sampling_experiment(
            [context], combos=(SampleCombo(100, 100),), methods=("rs",), repeats=1
        )
        assert cells[0].error_pct < 1e-9

    def test_unknown_method_propagates(self, context):
        with pytest.raises(ValueError):
            run_sampling_experiment(
                [context], combos=(SampleCombo(10, 10),), methods=("bogus",)
            )


class TestHistogramExperiment:
    def test_shape_and_metrics(self, context):
        cells = run_histogram_experiment([context], levels=(0, 2, 4), schemes=("ph", "gh"))
        assert len(cells) == 6
        schemes = {c.scheme for c in cells}
        assert schemes == {"ph", "gh"}
        for cell in cells:
            assert cell.error_pct >= 0
            assert cell.space_bytes > 0
            assert cell.build_seconds > 0

    def test_ph_and_gh_agree_at_level0(self, context):
        cells = run_histogram_experiment([context], levels=(0,), schemes=("ph", "gh"))
        ph, gh = cells
        assert ph.selectivity == pytest.approx(gh.selectivity)

    def test_space_grows_with_level(self, context):
        cells = run_histogram_experiment([context], levels=(2, 5), schemes=("gh",))
        assert cells[1].space_bytes > cells[0].space_bytes

    def test_unknown_scheme_rejected(self, context):
        with pytest.raises(ValueError, match="unknown scheme"):
            run_histogram_experiment([context], schemes=("fancy",))

    def test_basic_gh_supported(self, context):
        cells = run_histogram_experiment([context], levels=(2,), schemes=("gh_basic",))
        assert cells[0].scheme == "gh_basic"


class TestRendering:
    def test_figure6_layout(self, context):
        cells = run_sampling_experiment(
            [context], combos=(SampleCombo(10, 10),), methods=("rs",), repeats=1
        )
        text = render_figure6(cells)
        assert "Figure 6 — U_C" in text
        assert "10/10" in text
        assert "RS" in text

    def test_figure7_layout(self, context):
        cells = run_histogram_experiment([context], levels=(0, 1), schemes=("gh",))
        text = render_figure7(cells)
        assert "Figure 7 — U_C" in text
        assert "GH" in text
        assert "est.time" in text

    def test_format_pct(self):
        from repro.eval import format_pct

        assert format_pct(1234.5) == "1234%"
        assert format_pct(12.34) == "12.3%"
        assert format_pct(0.1234) == "0.123%"
        assert format_pct(0.00012) == "1.2e-04%"
        assert format_pct(math.inf) == "inf"
        assert format_pct(math.nan) == "nan"


class TestTreeBuildOption:
    def test_dynamic_build_slower_but_same_truth(self):
        from repro.datasets import make_uniform

        a = make_uniform(800, seed=70)
        b = make_uniform(800, seed=71)
        fast = prepare_pair("p", a, b, tree_build="str")
        slow = prepare_pair("p", a, b, tree_build="dynamic")
        assert slow.actual_pairs == fast.actual_pairs
        assert slow.build_seconds > fast.build_seconds

    def test_unknown_tree_build_rejected(self):
        from repro.datasets import make_uniform

        a = make_uniform(10, seed=0)
        with pytest.raises(ValueError, match="tree_build"):
            prepare_pair("p", a, a, tree_build="quantum")

    def test_prepare_pairs_forwards_option(self):
        from repro.datasets import make_uniform

        a = make_uniform(100, seed=1)
        contexts = prepare_pairs({"X": (a, a)}, tree_build="dynamic")
        assert contexts[0].actual_pairs > 0


class TestZeroSelectivityPair:
    def test_infinite_error_rendered(self):
        """A join with no results: any positive estimate has infinite
        relative error, and the renderer must not crash on it."""
        from repro.datasets import make_clustered
        from repro.eval import render_figure7, run_histogram_experiment

        west = make_clustered(300, seed=150, center=(0.1, 0.1), spread=0.01)
        east = make_clustered(300, seed=151, center=(0.9, 0.9), spread=0.01)
        ctx = prepare_pair("disjoint", west, east)
        assert ctx.actual_selectivity == 0.0
        cells = run_histogram_experiment([ctx], levels=(0,), schemes=("gh",))
        text = render_figure7(cells)
        assert "inf" in text  # h=0 parametric estimate > 0 vs truth 0

    def test_fine_gh_sees_the_emptiness(self):
        from repro.datasets import make_clustered
        from repro.eval import run_histogram_experiment

        west = make_clustered(300, seed=150, center=(0.1, 0.1), spread=0.01)
        east = make_clustered(300, seed=151, center=(0.9, 0.9), spread=0.01)
        ctx = prepare_pair("disjoint", west, east)
        cells = run_histogram_experiment([ctx], levels=(3,), schemes=("gh",))
        assert cells[0].selectivity == 0.0
        assert cells[0].error_pct == 0.0
