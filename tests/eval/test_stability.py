"""Unit tests for the sampling-stability experiment."""

import pytest

from repro.core import SampleCombo
from repro.datasets import make_clustered, make_uniform
from repro.eval import (
    prepare_pair,
    render_stability,
    run_stability_experiment,
)


@pytest.fixture(scope="module")
def context():
    a = make_uniform(1500, seed=110, mean_width=0.01, mean_height=0.01)
    b = make_clustered(1500, seed=111, mean_width=0.01, mean_height=0.01)
    return prepare_pair("U_C", a, b)


class TestStabilityExperiment:
    def test_row_shape(self, context):
        rows = run_stability_experiment(
            [context], combos=(SampleCombo(10, 10),), repeats=4
        )
        assert len(rows) == 2  # one sampling row + the GH reference
        techniques = [r.technique for r in rows]
        assert "rswr 10/10" in techniques
        assert any(t.startswith("gh") for t in techniques)

    def test_gh_reference_has_zero_spread(self, context):
        rows = run_stability_experiment(
            [context], combos=(SampleCombo(10, 10),), repeats=4
        )
        gh_row = next(r for r in rows if r.technique.startswith("gh"))
        assert gh_row.spread_pct == 0.0

    def test_sampling_spread_positive(self, context):
        rows = run_stability_experiment(
            [context], combos=(SampleCombo(5, 5),), repeats=6
        )
        sampling = next(r for r in rows if r.technique.startswith("rswr"))
        assert sampling.spread_pct > 0.0

    def test_spread_shrinks_with_sample_size(self, context):
        rows = run_stability_experiment(
            [context],
            combos=(SampleCombo(2, 2), SampleCombo(20, 20)),
            repeats=8,
        )
        small = next(r for r in rows if r.technique == "rswr 2/2")
        large = next(r for r in rows if r.technique == "rswr 20/20")
        assert large.spread_pct < small.spread_pct

    def test_render(self, context):
        rows = run_stability_experiment(
            [context], combos=(SampleCombo(10, 10),), repeats=3
        )
        text = render_stability(rows)
        assert "Stability — U_C" in text
        assert "spread" in text
