"""Golden accuracy gate: the committed corpus must replay exactly.

``golden_corpus.json`` freezes, for four seeded synthetic join pairs:
the exact intersecting-pair count (re-verified here through the
*parallel* PBSM oracle, workers=2), a per-estimator relative-error
ceiling (measured error x1.5 + 1pp at freeze time), and — since corpus
version 2 — a per-predicate section per pair: the exact count under
every standard predicate plus the error ceilings of that predicate's
estimator family.  A failure means an estimator or a generator changed
behavior; regenerate deliberately with
``python benchmarks/make_golden_corpus.py`` and justify the diff.
"""

import json
from pathlib import Path

import pytest

from repro.eval.golden import (
    CORPUS_VERSION,
    GOLDEN_ESTIMATORS,
    GOLDEN_PAIRS,
    GOLDEN_PREDICATE_ESTIMATORS,
    build_pair,
    check_corpus,
)
from repro.join import partition_join_count
from repro.predicates import STANDARD_PREDICATES, naive_predicate_count, predicate_from_key

pytestmark = pytest.mark.accuracy

CORPUS_PATH = Path(__file__).parent / "golden_corpus.json"


@pytest.fixture(scope="module")
def corpus():
    return json.loads(CORPUS_PATH.read_text())


def test_corpus_file_shape(corpus):
    assert corpus["version"] == CORPUS_VERSION
    assert set(corpus["pairs"]) == set(GOLDEN_PAIRS)
    for entry in corpus["pairs"].values():
        assert set(entry["estimators"]) == set(GOLDEN_ESTIMATORS)
        for grades in entry["estimators"].values():
            assert grades["max_error_pct"] >= grades["error_pct"]
        assert set(entry["predicates"]) == set(STANDARD_PREDICATES)
        for pred_name, section in entry["predicates"].items():
            assert predicate_from_key(section["predicate_key"]) == STANDARD_PREDICATES[pred_name]
            assert set(section["estimators"]) == set(GOLDEN_PREDICATE_ESTIMATORS[pred_name])
            for grades in section["estimators"].values():
                assert grades["max_error_pct"] >= grades["error_pct"]


def test_intersects_sections_cross_gate_the_oracle(corpus):
    """The committed intersects-predicate count must equal the pair's
    top-level PBSM count — the predicate engines and the partition
    oracle are tied together inside the committed file itself."""
    for name, entry in corpus["pairs"].items():
        assert entry["predicates"]["intersects"]["exact_count"] == entry["exact_count"], name


def test_corpus_replays_clean(corpus):
    """The one gate: exact counts + every error ceiling, via the
    parallel oracle."""
    mismatches = check_corpus(corpus, workers=2)
    assert not mismatches, "\n".join(str(m) for m in mismatches)


@pytest.mark.parametrize("name", sorted(GOLDEN_PAIRS))
def test_exact_counts_match_serial_engine(corpus, name):
    """Counts were frozen through the parallel oracle; the serial PBSM
    engine must agree (differential cross-check of the corpus itself)."""
    ds1, ds2 = build_pair(name)
    assert partition_join_count(ds1.rects, ds2.rects) == corpus["pairs"][name]["exact_count"]


@pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
def test_predicate_counts_match_naive_oracle(corpus, pred_name):
    """The committed per-predicate counts were frozen through the
    specialized engines; the blocked naive oracle must agree on the
    smallest pair (differential cross-check of the corpus itself)."""
    name = "clusters_x_diagonal"
    ds1, ds2 = build_pair(name)
    expected = corpus["pairs"][name]["predicates"][pred_name]["exact_count"]
    assert naive_predicate_count(ds1.rects, ds2.rects, STANDARD_PREDICATES[pred_name]) == expected


def test_corpus_rejects_stale_version(corpus):
    stale = dict(corpus, version=CORPUS_VERSION - 1)
    with pytest.raises(ValueError, match="regenerate"):
        check_corpus(stale)


def test_mismatch_reported_not_raised(corpus):
    """check_corpus returns structured mismatches for tooling — a
    corrupted count must surface as a GoldenMismatch, not an exception."""
    name = sorted(GOLDEN_PAIRS)[0]
    broken = json.loads(CORPUS_PATH.read_text())
    broken["pairs"][name]["exact_count"] += 1
    mismatches = check_corpus(broken)
    assert any(m.pair == name and m.field == "count" for m in mismatches)


def test_predicate_mismatch_reported_not_raised(corpus):
    """A corrupted per-predicate count must surface as a structured
    mismatch naming the predicate section."""
    name = sorted(GOLDEN_PAIRS)[0]
    broken = json.loads(CORPUS_PATH.read_text())
    broken["pairs"][name]["predicates"]["within_eps"]["exact_count"] += 1
    mismatches = check_corpus(broken)
    assert any(m.pair == name and m.field == "within_eps.count" for m in mismatches)
