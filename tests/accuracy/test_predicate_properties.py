"""Hypothesis properties: predicate engines vs the naive oracle.

The property gate of the predicate-parameterized accuracy suite.
Hypothesis generates adversarial inputs — coordinates snapped to a
coarse grid (endpoint ties everywhere), zero-area rectangles, coincident
points — and every specialized engine must match the blocked dense
oracle, for every standard predicate.  On top of the differential
property, the degenerate-parameter identities the ISSUE pins:

* ε = 0 is *bit-identical* to the intersects engines;
* ε past the universe diagonal is the cross product;
* ``lt`` + ``ge`` counts complement to ``|a| · |b|``;
* interval overlap along x equals intersects on y-flattened data;
* reversing the inputs under the reversed predicate transposes the
  pair set.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, RectArray
from repro.join.naive import nested_loop_pairs
from repro.predicates import (
    STANDARD_PREDICATES,
    Inequality,
    WithinDistance,
    epsilon_join_pairs,
    inequality_join_count,
    naive_predicate_count,
    naive_predicate_pairs,
    predicate_join_count,
    predicate_join_pairs,
    supported_join_methods,
)

pytestmark = pytest.mark.accuracy

# Coordinates on a coarse 1/8 grid: ties, shared edges, and exact-ε gaps
# are the common case, not the measure-zero one.
grid_coords = st.integers(min_value=0, max_value=8).map(lambda k: k / 8.0)
epsilons = st.sampled_from([0.0, 0.125, 0.25, 0.5, 5.0])


@st.composite
def degenerate_rect_arrays(draw, max_n=18):
    """Rect arrays where zero-width/zero-height rows are routine."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    rects = [
        Rect.from_points(
            draw(grid_coords), draw(grid_coords), draw(grid_coords), draw(grid_coords)
        )
        for _ in range(n)
    ]
    return RectArray.from_rects(rects)


@settings(max_examples=40, deadline=None)
@given(degenerate_rect_arrays(), degenerate_rect_arrays())
def test_property_engines_match_oracle_standard_predicates(a, b):
    for predicate in STANDARD_PREDICATES.values():
        reference = naive_predicate_pairs(a, b, predicate)
        assert naive_predicate_count(a, b, predicate) == len(reference)
        for method in supported_join_methods(predicate):
            got = predicate_join_pairs(a, b, predicate, method=method)
            assert np.array_equal(got, reference), (predicate.key, method)


@settings(max_examples=40, deadline=None)
@given(degenerate_rect_arrays(), degenerate_rect_arrays(), epsilons)
def test_property_epsilon_join_matches_oracle(a, b, eps):
    predicate = WithinDistance(eps)
    reference = naive_predicate_pairs(a, b, predicate)
    for engine in ("flat", "sweep"):
        assert np.array_equal(epsilon_join_pairs(a, b, eps, engine=engine), reference)


@settings(max_examples=40, deadline=None)
@given(degenerate_rect_arrays(), degenerate_rect_arrays())
def test_property_eps_zero_is_intersects_bit_for_bit(a, b):
    reference = nested_loop_pairs(a, b)
    for engine in ("flat", "sweep"):
        got = epsilon_join_pairs(a, b, 0.0, engine=engine)
        assert got.dtype == reference.dtype
        assert np.array_equal(got, reference)


@settings(max_examples=40, deadline=None)
@given(degenerate_rect_arrays(), degenerate_rect_arrays())
def test_property_huge_eps_is_cross_product(a, b):
    # The grid universe is [0,1]²: ε = 2 exceeds its diagonal, so every
    # pair (if any rows exist) qualifies.
    predicate = WithinDistance(2.0)
    expected = len(a) * len(b)
    for method in supported_join_methods(predicate):
        assert predicate_join_count(a, b, predicate, method=method) == expected


@settings(max_examples=40, deadline=None)
@given(
    degenerate_rect_arrays(),
    degenerate_rect_arrays(),
    st.sampled_from(["lt", "le"]),
    st.sampled_from(["xmin", "xmax", "ymin", "ymax"]),
)
def test_property_inequality_complement(a, b, op, endpoint):
    predicate = Inequality(op, endpoint)
    total = len(a) * len(b)
    assert (
        inequality_join_count(a, b, predicate)
        + inequality_join_count(a, b, predicate.complement())
        == total
    )


@settings(max_examples=40, deadline=None)
@given(degenerate_rect_arrays(), degenerate_rect_arrays())
def test_property_interval_x_is_intersects_on_flattened(a, b):
    def flatten(r):
        zero = np.zeros(len(r))
        return RectArray(r.xmin, zero, r.xmax, zero)

    reference = nested_loop_pairs(flatten(a), flatten(b))
    predicate = STANDARD_PREDICATES["interval_x"]
    for method in supported_join_methods(predicate):
        got = predicate_join_pairs(a, b, predicate, method=method)
        assert np.array_equal(got, reference), method


@settings(max_examples=40, deadline=None)
@given(degenerate_rect_arrays(), degenerate_rect_arrays())
def test_property_reversed_arguments_transpose_the_pairs(a, b):
    for predicate in STANDARD_PREDICATES.values():
        forward = predicate_join_pairs(a, b, predicate)
        backward = predicate_join_pairs(b, a, predicate.reversed())
        swapped = forward[:, ::-1]
        order = np.lexsort((swapped[:, 1], swapped[:, 0]))
        assert np.array_equal(swapped[order], backward), predicate.key


@settings(max_examples=30, deadline=None)
@given(degenerate_rect_arrays(max_n=10))
def test_property_coincident_pools_self_join(a):
    """Self-joins on tie-heavy pools: the dense mask diagonal is all-True
    for the reflexive predicates, and engine counts still match."""
    for key in ("intersects", "within_eps", "interval_x"):
        predicate = STANDARD_PREDICATES[key]
        if len(a):
            assert predicate.pair_mask(a, a).diagonal().all(), key
        expected = naive_predicate_count(a, a, predicate)
        assert predicate_join_count(a, a, predicate) == expected, key
