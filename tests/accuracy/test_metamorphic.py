"""Metamorphic accuracy tests: selectivity is a *relative* quantity, so
every estimator must be invariant under transformations that preserve
the data's geometry relative to its extent:

* **translation** of both datasets and their extents;
* **uniform scaling** about the origin (we scale by powers of two, which
  is exact in binary floating point — the grid assignment arithmetic
  ``(x*s - xmin*s) / (cw*s)`` then reproduces the untransformed
  quotients bit for bit);
* **x/y axis swap** (the gridded schemes transpose their cell arrays;
  their sums are permutation-invariant up to float summation order).

Histogram/parametric estimates are compared with tolerances matched to
the transform's exactness; the seeded sampling estimators must be
invariant *in distribution* — same seed, same sample indices, so the
estimate must survive exact transforms unchanged.
"""

import math

import pytest

from repro.core import (
    BasicGHEstimator,
    GHEstimator,
    ParametricEstimator,
    PHEstimator,
)
from repro.datasets import SpatialDataset, make_clustered, make_gaussian_clusters, make_uniform
from repro.geometry import Rect, RectArray
from repro.sampling import SamplingJoinEstimator

pytestmark = pytest.mark.accuracy


# ----------------------------------------------------------------------
# Dataset transforms (extent transformed alongside the data).
# ----------------------------------------------------------------------
def translate(ds: SpatialDataset, dx: float, dy: float) -> SpatialDataset:
    extent = Rect(
        ds.extent.xmin + dx, ds.extent.ymin + dy, ds.extent.xmax + dx, ds.extent.ymax + dy
    )
    return SpatialDataset(ds.name, ds.rects.translate(dx, dy), extent)


def scale(ds: SpatialDataset, s: float) -> SpatialDataset:
    extent = Rect(
        ds.extent.xmin * s, ds.extent.ymin * s, ds.extent.xmax * s, ds.extent.ymax * s
    )
    return SpatialDataset(ds.name, ds.rects.scale(s), extent)


def swap_axes(ds: SpatialDataset) -> SpatialDataset:
    r = ds.rects
    rects = RectArray(r.ymin, r.xmin, r.ymax, r.xmax, validate=False)
    extent = Rect(ds.extent.ymin, ds.extent.xmin, ds.extent.ymax, ds.extent.xmax)
    return SpatialDataset(ds.name, rects, extent)


#: (transform applied to both datasets, relative tolerance).  Power-of-2
#: scaling is bit-exact; translation/swap perturb float summation only.
TRANSFORMS = {
    "translate": (lambda ds: translate(ds, 0.5, -0.25), 1e-6),
    "scale_pow2": (lambda ds: scale(ds, 4.0), 1e-12),
    "swap_axes": (lambda ds: swap_axes(ds), 1e-9),
}

ESTIMATORS = {
    "parametric": ParametricEstimator(),
    "ph5": PHEstimator(level=5),
    "gh6": GHEstimator(level=6),
    "gh_basic6": BasicGHEstimator(level=6),
}


@pytest.fixture(scope="module")
def pairs():
    return {
        "uniform_x_clustered": (
            make_uniform(1500, seed=71, name="U"),
            make_clustered(1200, seed=72, name="C"),
        ),
        "zipf_x_uniform": (
            make_gaussian_clusters(1300, seed=73, n_clusters=5, name="Z"),
            make_uniform(1100, seed=74, name="U2"),
        ),
    }


@pytest.mark.parametrize("est_name", sorted(ESTIMATORS))
@pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
def test_histogram_estimators_invariant(pairs, est_name, transform_name):
    estimator = ESTIMATORS[est_name]
    transform, rel_tol = TRANSFORMS[transform_name]
    for pair_name, (ds1, ds2) in pairs.items():
        base = estimator.estimate(ds1, ds2)
        moved = estimator.estimate(transform(ds1), transform(ds2))
        assert base > 0, f"{pair_name}: degenerate baseline"
        assert math.isclose(base, moved, rel_tol=rel_tol), (
            f"{est_name} not invariant under {transform_name} on {pair_name}: "
            f"{base} vs {moved}"
        )


#: (method, transform) combinations where the sample *indices* are
#: invariant, so the estimate must be bit-identical.  SS is excluded
#: under axis swap on purpose: it samples along the Hilbert order, and
#: swapping x/y reverses the Hilbert traversal (diagonal symmetry), so
#: SS legitimately draws a different — equally valid — sample set.
_EXACT_CASES = [
    ("rs", "scale_pow2"),
    ("rs", "swap_axes"),
    ("rswr", "scale_pow2"),
    ("rswr", "swap_axes"),
    ("ss", "scale_pow2"),
]


@pytest.mark.parametrize("join_method", ["flat", "rtree"])
@pytest.mark.parametrize("method,transform_name", _EXACT_CASES)
def test_sampling_exact_transforms_bit_identical(pairs, method, transform_name, join_method):
    """Exact transforms: same seed → same sample ids → identical count.

    Run under both join engines — the flat SoA kernel must preserve the
    invariance exactly as the reference object tree does.
    """
    transform, _ = TRANSFORMS[transform_name]
    estimator = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method=join_method)
    for pair_name, (ds1, ds2) in pairs.items():
        base = estimator.estimate(ds1, ds2)
        moved = estimator.estimate(transform(ds1), transform(ds2))
        assert base == moved, f"{method}/{join_method} under {transform_name} on {pair_name}"


@pytest.mark.parametrize("join_method", ["flat", "rtree"])
@pytest.mark.parametrize("method", ["rs", "rswr", "ss"])
def test_sampling_translation_invariant(pairs, method, join_method):
    """Translation rounds coordinates (~1 ulp); intersection gaps in the
    generated data are ~12 orders of magnitude larger, so the sample
    join count — and hence the estimate — must not change."""
    transform, _ = TRANSFORMS["translate"]
    estimator = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method=join_method)
    for pair_name, (ds1, ds2) in pairs.items():
        base = estimator.estimate(ds1, ds2)
        moved = estimator.estimate(transform(ds1), transform(ds2))
        assert base == moved, f"{method}/{join_method} under translation on {pair_name}"


@pytest.mark.parametrize("method,transform_name", _EXACT_CASES)
def test_flat_and_rtree_engines_agree_under_transforms(pairs, method, transform_name):
    """The two R-tree engines must agree bit-for-bit on transformed data
    too — the differential gate holds everywhere, not just on the raw
    corpus."""
    transform, _ = TRANSFORMS[transform_name]
    flat = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method="flat")
    ref = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method="rtree")
    for pair_name, (ds1, ds2) in pairs.items():
        moved1, moved2 = transform(ds1), transform(ds2)
        got = flat.estimate_detailed(moved1, moved2)
        want = ref.estimate_detailed(moved1, moved2)
        assert got.sample_pairs == want.sample_pairs, f"{method} on {pair_name}"
        assert got.selectivity == want.selectivity


def test_confidence_interval_invariant_in_distribution(pairs):
    """Fixed-seed RSWR replicas: the whole interval must survive an
    exact transform unchanged (same seeds, same draws)."""
    transform, _ = TRANSFORMS["scale_pow2"]
    ds1, ds2 = pairs["uniform_x_clustered"]
    est = SamplingJoinEstimator("rswr", 0.25, 0.25, seed=23)
    base = est.estimate_with_confidence(ds1, ds2, repeats=5)
    moved = est.estimate_with_confidence(transform(ds1), transform(ds2), repeats=5)
    assert base == moved


# ----------------------------------------------------------------------
# Predicate-aware metamorphic suite.
#
# A transform T of the *data* preserves the join only together with the
# matching transform of the *predicate* (the algebra on JoinPredicate):
# translation keeps every predicate, power-of-two scaling rescales ε
# with the data, an axis swap maps x-predicates to y-predicates.  The
# exact engines must then reproduce the count exactly; the estimators
# are held to the same tolerance tiers as the intersection ones.
# ----------------------------------------------------------------------

from repro.predicates import (  # noqa: E402  (suite-local extension)
    STANDARD_PREDICATES,
    Inequality,
    WithinDistance,
    create_predicate_estimator,
    predicate_join_count,
)

#: transform name → the matching predicate transform.
_PREDICATE_TRANSFORMS = {
    "translate": lambda p: p.translated(0.5, -0.25),
    "scale_pow2": lambda p: p.scaled(4.0),
    "swap_axes": lambda p: p.swapped_axes(),
}


@pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
@pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
def test_exact_counts_invariant_under_paired_transforms(pairs, pred_name, transform_name):
    """(T(data), T(predicate)) preserves the exact join count — for every
    standard predicate, every transform, every matrix pair."""
    transform, _ = TRANSFORMS[transform_name]
    predicate = STANDARD_PREDICATES[pred_name]
    moved_predicate = _PREDICATE_TRANSFORMS[transform_name](predicate)
    for pair_name, (ds1, ds2) in pairs.items():
        base = predicate_join_count(ds1.rects, ds2.rects, predicate)
        moved = predicate_join_count(
            transform(ds1).rects, transform(ds2).rects, moved_predicate
        )
        assert base == moved, f"{pred_name} under {transform_name} on {pair_name}"
        assert base > 0, f"{pair_name}: degenerate baseline"


@pytest.mark.parametrize(
    "pred_name", ["within_eps", "interval_x", "ineq_lt_xmin"]
)
@pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
def test_predicate_estimators_invariant(pairs, pred_name, transform_name):
    """Each predicate's estimator family (inflated GH, interval and
    endpoint histograms) is invariant under the paired transforms, at
    the transform's tolerance tier."""
    transform, rel_tol = TRANSFORMS[transform_name]
    predicate = STANDARD_PREDICATES[pred_name]
    moved_predicate = _PREDICATE_TRANSFORMS[transform_name](predicate)
    base_estimator = create_predicate_estimator("gh", predicate, level=6)
    moved_estimator = create_predicate_estimator("gh", moved_predicate, level=6)
    for pair_name, (ds1, ds2) in pairs.items():
        base = base_estimator.estimate(ds1, ds2)
        moved = moved_estimator.estimate(transform(ds1), transform(ds2))
        assert base > 0, f"{pair_name}: degenerate baseline"
        assert math.isclose(base, moved, rel_tol=rel_tol), (
            f"{pred_name} estimator not invariant under {transform_name} on "
            f"{pair_name}: {base} vs {moved}"
        )


@pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
@pytest.mark.parametrize("transform_name", ["scale_pow2", "swap_axes"])
def test_sampling_with_predicate_bit_identical_under_exact_transforms(
    pairs, pred_name, transform_name
):
    """Exact transforms with the paired predicate: same seed → same
    sample ids → the predicate-aware sample join count is bit-identical."""
    transform, _ = TRANSFORMS[transform_name]
    predicate = STANDARD_PREDICATES[pred_name]
    moved_predicate = _PREDICATE_TRANSFORMS[transform_name](predicate)
    base_est = SamplingJoinEstimator("rs", 0.3, 0.3, seed=17, predicate=predicate)
    moved_est = SamplingJoinEstimator("rs", 0.3, 0.3, seed=17, predicate=moved_predicate)
    for pair_name, (ds1, ds2) in pairs.items():
        base = base_est.estimate(ds1, ds2)
        moved = moved_est.estimate(transform(ds1), transform(ds2))
        assert base == moved, f"{pred_name} under {transform_name} on {pair_name}"


# -- documented non-invariances ----------------------------------------
# The predicate docstrings call these out; regression-test that they
# stay *non*-invariant (a future "fix" silently changing the semantics
# should trip these).


def test_unswapped_inequality_changes_under_axis_swap(pairs):
    """Keeping the same Inequality while swapping the data's axes asks a
    different question (it now compares what used to be y-endpoints);
    on asymmetric data the count must change."""
    ds1, ds2 = pairs["uniform_x_clustered"]
    predicate = Inequality("lt", "xmin")
    base = predicate_join_count(ds1.rects, ds2.rects, predicate)
    moved = predicate_join_count(
        swap_axes(ds1).rects, swap_axes(ds2).rects, predicate
    )
    # The clustered side centers at (0.4, 0.7): its xmin and ymin
    # distributions differ, so the unswapped predicate cannot agree.
    assert base != moved
    # The paired transform restores the count exactly.
    assert (
        predicate_join_count(
            swap_axes(ds1).rects, swap_axes(ds2).rects, predicate.swapped_axes()
        )
        == base
    )


def test_unscaled_epsilon_changes_under_scaling(pairs):
    """Scaling the data 4x while keeping ε fixed shrinks the join: ε is
    an absolute distance, not a relative one."""
    ds1, ds2 = pairs["uniform_x_clustered"]
    predicate = WithinDistance(0.05)
    base = predicate_join_count(ds1.rects, ds2.rects, predicate)
    scaled1, scaled2 = scale(ds1, 4.0), scale(ds2, 4.0)
    moved = predicate_join_count(scaled1.rects, scaled2.rects, predicate)
    assert moved < base
    # The paired transform (ε -> 4ε) restores the count exactly.
    assert (
        predicate_join_count(scaled1.rects, scaled2.rects, predicate.scaled(4.0))
        == base
    )
