"""Metamorphic accuracy tests: selectivity is a *relative* quantity, so
every estimator must be invariant under transformations that preserve
the data's geometry relative to its extent:

* **translation** of both datasets and their extents;
* **uniform scaling** about the origin (we scale by powers of two, which
  is exact in binary floating point — the grid assignment arithmetic
  ``(x*s - xmin*s) / (cw*s)`` then reproduces the untransformed
  quotients bit for bit);
* **x/y axis swap** (the gridded schemes transpose their cell arrays;
  their sums are permutation-invariant up to float summation order).

Histogram/parametric estimates are compared with tolerances matched to
the transform's exactness; the seeded sampling estimators must be
invariant *in distribution* — same seed, same sample indices, so the
estimate must survive exact transforms unchanged.
"""

import math

import pytest

from repro.core import (
    BasicGHEstimator,
    GHEstimator,
    ParametricEstimator,
    PHEstimator,
)
from repro.datasets import SpatialDataset, make_clustered, make_gaussian_clusters, make_uniform
from repro.geometry import Rect, RectArray
from repro.sampling import SamplingJoinEstimator

pytestmark = pytest.mark.accuracy


# ----------------------------------------------------------------------
# Dataset transforms (extent transformed alongside the data).
# ----------------------------------------------------------------------
def translate(ds: SpatialDataset, dx: float, dy: float) -> SpatialDataset:
    extent = Rect(
        ds.extent.xmin + dx, ds.extent.ymin + dy, ds.extent.xmax + dx, ds.extent.ymax + dy
    )
    return SpatialDataset(ds.name, ds.rects.translate(dx, dy), extent)


def scale(ds: SpatialDataset, s: float) -> SpatialDataset:
    extent = Rect(
        ds.extent.xmin * s, ds.extent.ymin * s, ds.extent.xmax * s, ds.extent.ymax * s
    )
    return SpatialDataset(ds.name, ds.rects.scale(s), extent)


def swap_axes(ds: SpatialDataset) -> SpatialDataset:
    r = ds.rects
    rects = RectArray(r.ymin, r.xmin, r.ymax, r.xmax, validate=False)
    extent = Rect(ds.extent.ymin, ds.extent.xmin, ds.extent.ymax, ds.extent.xmax)
    return SpatialDataset(ds.name, rects, extent)


#: (transform applied to both datasets, relative tolerance).  Power-of-2
#: scaling is bit-exact; translation/swap perturb float summation only.
TRANSFORMS = {
    "translate": (lambda ds: translate(ds, 0.5, -0.25), 1e-6),
    "scale_pow2": (lambda ds: scale(ds, 4.0), 1e-12),
    "swap_axes": (lambda ds: swap_axes(ds), 1e-9),
}

ESTIMATORS = {
    "parametric": ParametricEstimator(),
    "ph5": PHEstimator(level=5),
    "gh6": GHEstimator(level=6),
    "gh_basic6": BasicGHEstimator(level=6),
}


@pytest.fixture(scope="module")
def pairs():
    return {
        "uniform_x_clustered": (
            make_uniform(1500, seed=71, name="U"),
            make_clustered(1200, seed=72, name="C"),
        ),
        "zipf_x_uniform": (
            make_gaussian_clusters(1300, seed=73, n_clusters=5, name="Z"),
            make_uniform(1100, seed=74, name="U2"),
        ),
    }


@pytest.mark.parametrize("est_name", sorted(ESTIMATORS))
@pytest.mark.parametrize("transform_name", sorted(TRANSFORMS))
def test_histogram_estimators_invariant(pairs, est_name, transform_name):
    estimator = ESTIMATORS[est_name]
    transform, rel_tol = TRANSFORMS[transform_name]
    for pair_name, (ds1, ds2) in pairs.items():
        base = estimator.estimate(ds1, ds2)
        moved = estimator.estimate(transform(ds1), transform(ds2))
        assert base > 0, f"{pair_name}: degenerate baseline"
        assert math.isclose(base, moved, rel_tol=rel_tol), (
            f"{est_name} not invariant under {transform_name} on {pair_name}: "
            f"{base} vs {moved}"
        )


#: (method, transform) combinations where the sample *indices* are
#: invariant, so the estimate must be bit-identical.  SS is excluded
#: under axis swap on purpose: it samples along the Hilbert order, and
#: swapping x/y reverses the Hilbert traversal (diagonal symmetry), so
#: SS legitimately draws a different — equally valid — sample set.
_EXACT_CASES = [
    ("rs", "scale_pow2"),
    ("rs", "swap_axes"),
    ("rswr", "scale_pow2"),
    ("rswr", "swap_axes"),
    ("ss", "scale_pow2"),
]


@pytest.mark.parametrize("join_method", ["flat", "rtree"])
@pytest.mark.parametrize("method,transform_name", _EXACT_CASES)
def test_sampling_exact_transforms_bit_identical(pairs, method, transform_name, join_method):
    """Exact transforms: same seed → same sample ids → identical count.

    Run under both join engines — the flat SoA kernel must preserve the
    invariance exactly as the reference object tree does.
    """
    transform, _ = TRANSFORMS[transform_name]
    estimator = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method=join_method)
    for pair_name, (ds1, ds2) in pairs.items():
        base = estimator.estimate(ds1, ds2)
        moved = estimator.estimate(transform(ds1), transform(ds2))
        assert base == moved, f"{method}/{join_method} under {transform_name} on {pair_name}"


@pytest.mark.parametrize("join_method", ["flat", "rtree"])
@pytest.mark.parametrize("method", ["rs", "rswr", "ss"])
def test_sampling_translation_invariant(pairs, method, join_method):
    """Translation rounds coordinates (~1 ulp); intersection gaps in the
    generated data are ~12 orders of magnitude larger, so the sample
    join count — and hence the estimate — must not change."""
    transform, _ = TRANSFORMS["translate"]
    estimator = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method=join_method)
    for pair_name, (ds1, ds2) in pairs.items():
        base = estimator.estimate(ds1, ds2)
        moved = estimator.estimate(transform(ds1), transform(ds2))
        assert base == moved, f"{method}/{join_method} under translation on {pair_name}"


@pytest.mark.parametrize("method,transform_name", _EXACT_CASES)
def test_flat_and_rtree_engines_agree_under_transforms(pairs, method, transform_name):
    """The two R-tree engines must agree bit-for-bit on transformed data
    too — the differential gate holds everywhere, not just on the raw
    corpus."""
    transform, _ = TRANSFORMS[transform_name]
    flat = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method="flat")
    ref = SamplingJoinEstimator(method, 0.3, 0.3, seed=17, join_method="rtree")
    for pair_name, (ds1, ds2) in pairs.items():
        moved1, moved2 = transform(ds1), transform(ds2)
        got = flat.estimate_detailed(moved1, moved2)
        want = ref.estimate_detailed(moved1, moved2)
        assert got.sample_pairs == want.sample_pairs, f"{method} on {pair_name}"
        assert got.selectivity == want.selectivity


def test_confidence_interval_invariant_in_distribution(pairs):
    """Fixed-seed RSWR replicas: the whole interval must survive an
    exact transform unchanged (same seeds, same draws)."""
    transform, _ = TRANSFORMS["scale_pow2"]
    ds1, ds2 = pairs["uniform_x_clustered"]
    est = SamplingJoinEstimator("rswr", 0.25, 0.25, seed=23)
    base = est.estimate_with_confidence(ds1, ds2, repeats=5)
    moved = est.estimate_with_confidence(transform(ds1), transform(ds2), repeats=5)
    assert base == moved
