"""Unit tests for box-counting statistics."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.fractal import box_occupancies, occupancy_profile, sum_squared_occupancy
from repro.geometry import RectArray


def points(xs, ys) -> SpatialDataset:
    return SpatialDataset("p", RectArray.from_points(np.asarray(xs), np.asarray(ys)))


class TestBoxOccupancies:
    def test_counts_sum_to_n(self, rng):
        ds = points(rng.random(500), rng.random(500))
        occ = box_occupancies(ds, 3)
        assert occ.sum() == 500
        assert len(occ) == 64

    def test_level_zero_single_bucket(self, rng):
        ds = points(rng.random(50), rng.random(50))
        occ = box_occupancies(ds, 0)
        assert occ.tolist() == [50]

    def test_known_placement(self):
        ds = points([0.1, 0.9, 0.9], [0.1, 0.9, 0.85])
        occ = box_occupancies(ds, 1)
        # Cell (0,0) has one point; cell (1,1) has two.
        assert occ[0] == 1
        assert occ[3] == 2

    def test_boundary_points_clamped(self):
        ds = points([0.0, 1.0], [0.0, 1.0])
        occ = box_occupancies(ds, 2)
        assert occ.sum() == 2

    def test_rect_dataset_uses_centers(self):
        rects = RectArray.from_coords([[0.1, 0.1, 0.3, 0.3]])
        ds = SpatialDataset("r", rects)
        occ = box_occupancies(ds, 2)  # center (0.2, 0.2) -> cell (0, 0)
        assert occ[0] == 1


class TestSumSquaredOccupancy:
    def test_all_separate(self):
        ds = points([0.1, 0.4, 0.6, 0.9], [0.1, 0.4, 0.6, 0.9])
        assert sum_squared_occupancy(ds, 2) == 4  # one point per cell

    def test_all_together(self):
        ds = points([0.5] * 10, [0.5] * 10)
        assert sum_squared_occupancy(ds, 1) == 100

    def test_monotone_nonincreasing_in_level(self, rng):
        """Finer grids can only split cells: S2 never increases."""
        ds = points(rng.random(1000), rng.random(1000))
        values = [sum_squared_occupancy(ds, level) for level in range(7)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_bounded_by_extremes(self, rng):
        ds = points(rng.random(100), rng.random(100))
        s2 = sum_squared_occupancy(ds, 4)
        assert 100 <= s2 <= 100**2


class TestOccupancyProfile:
    def test_profile_fields(self, rng):
        ds = points(rng.random(200), rng.random(200))
        profile = occupancy_profile(ds, [1, 3, 5])
        assert [p.level for p in profile] == [1, 3, 5]
        assert profile[0].cell_side == pytest.approx(0.5)
        assert all(p.s2 >= 200 for p in profile)
