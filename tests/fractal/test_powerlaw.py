"""Unit tests for the fractal/power-law estimators."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_points_like
from repro.fractal import (
    CorrelationDimensionEstimator,
    CrossPowerLawEstimator,
    PowerLawFit,
    pairs_within_distance,
)
from repro.geometry import Rect, RectArray


def points(xs, ys, name="p") -> SpatialDataset:
    return SpatialDataset(name, RectArray.from_points(np.asarray(xs), np.asarray(ys)))


@pytest.fixture(scope="module")
def uniform_points():
    rng = np.random.default_rng(90)
    return points(rng.random(8000), rng.random(8000))


class TestPowerLawFit:
    def test_exact_law_recovered(self):
        fit = PowerLawFit(exponent=2.0, intercept=np.log(3.0))
        assert fit(0.5) == pytest.approx(3.0 * 0.25)

    def test_zero_eps(self):
        assert PowerLawFit(1.0, 0.0)(0.0) == 0.0


class TestCorrelationDimension:
    def test_uniform_dimension_near_two(self, uniform_points):
        est = CorrelationDimensionEstimator(uniform_points)
        assert est.correlation_dimension == pytest.approx(2.0, abs=0.15)

    def test_line_dimension_near_one(self):
        rng = np.random.default_rng(91)
        t = rng.random(8000)
        ds = points(t, np.clip(t + 0.0005 * rng.standard_normal(8000), 0, 1))
        est = CorrelationDimensionEstimator(ds)
        assert est.correlation_dimension == pytest.approx(1.0, abs=0.25)

    def test_atomic_dimension_near_zero(self):
        rng = np.random.default_rng(92)
        base = np.full(3000, 0.5) + 0.0004 * rng.standard_normal(3000)
        ds = points(np.clip(base, 0, 1), np.clip(base, 0, 1))
        est = CorrelationDimensionEstimator(ds, levels=range(1, 6))
        assert est.correlation_dimension == pytest.approx(0.0, abs=0.2)

    def test_pair_estimates_track_truth_uniform(self, uniform_points):
        est = CorrelationDimensionEstimator(uniform_points)
        for eps in (0.005, 0.02, 0.05):
            truth = pairs_within_distance(uniform_points, None, eps)
            assert est.estimate_pairs(eps) == pytest.approx(truth, rel=0.35)

    def test_selectivity_normalization(self, uniform_points):
        est = CorrelationDimensionEstimator(uniform_points)
        eps = 0.02
        n = len(uniform_points)
        assert est.estimate_selectivity(eps) == pytest.approx(
            est.estimate_pairs(eps) / n**2
        )

    def test_rejects_non_point_data(self):
        rects = SpatialDataset("r", RectArray.from_coords([[0, 0, 0.5, 0.5]] * 10))
        with pytest.raises(ValueError, match="point datasets"):
            CorrelationDimensionEstimator(rects)

    def test_rejects_tiny_input(self):
        with pytest.raises(ValueError):
            CorrelationDimensionEstimator(points([0.5], [0.5]))

    def test_negative_eps_rejected(self, uniform_points):
        est = CorrelationDimensionEstimator(uniform_points)
        with pytest.raises(ValueError):
            est.estimate_pairs(-0.1)


class TestCrossPowerLaw:
    def test_exponent_near_two_for_uniformish(self):
        p1 = make_points_like(5000, seed=93)
        p2 = make_points_like(5000, seed=94)
        est = CrossPowerLawEstimator(p1, p2)
        assert 1.0 < est.pair_count_exponent < 3.0

    def test_pair_estimates_track_truth(self):
        p1 = make_points_like(6000, seed=95)
        p2 = make_points_like(6000, seed=96)
        est = CrossPowerLawEstimator(p1, p2)
        for eps in (0.01, 0.04):
            truth = pairs_within_distance(p1, p2, eps)
            assert est.estimate_pairs(eps) == pytest.approx(truth, rel=0.5)

    def test_extent_mismatch_rejected(self, uniform_points):
        other = SpatialDataset(
            "o", RectArray.from_points(np.array([1.5]), np.array([1.5])),
            Rect(0, 0, 2, 2),
        )
        with pytest.raises(ValueError, match="common extent"):
            CrossPowerLawEstimator(uniform_points, other)

    def test_empty_rejected(self, uniform_points):
        empty = SpatialDataset("e", RectArray.empty())
        with pytest.raises(ValueError):
            CrossPowerLawEstimator(uniform_points, empty)


class TestGroundTruth:
    def test_distance_semantics(self):
        # Binary-exact coordinates so the closed boundary is hit exactly.
        ds1 = points([0.25], [0.5], "a")
        ds2 = points([0.5], [0.5], "b")
        assert pairs_within_distance(ds1, ds2, 0.25) == 1  # exactly touching
        assert pairs_within_distance(ds1, ds2, 0.125) == 0

    def test_linf_not_l2(self):
        # Diagonal offset (0.25, 0.25): L∞ distance 0.25, L2 ≈ 0.354.
        ds1 = points([0.25], [0.25], "a")
        ds2 = points([0.5], [0.5], "b")
        assert pairs_within_distance(ds1, ds2, 0.25) == 1

    def test_self_join_excludes_diagonal(self):
        ds = points([0.2, 0.8], [0.2, 0.8])
        assert pairs_within_distance(ds, None, 0.01) == 0

    def test_self_join_counts_ordered_pairs(self):
        ds = points([0.5, 0.505], [0.5, 0.5])
        assert pairs_within_distance(ds, None, 0.01) == 2

    def test_dimension_restriction_on_ds2(self, uniform_points):
        rects = SpatialDataset("r", RectArray.from_coords([[0, 0, 0.5, 0.5]]))
        with pytest.raises(ValueError):
            pairs_within_distance(uniform_points, rects, 0.1)
