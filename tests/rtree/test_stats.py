"""Unit tests for R-tree statistics."""


from repro.geometry import RectArray
from repro.rtree import (
    BYTES_PER_ENTRY,
    RTree,
    bulk_load_str,
    collect_stats,
    tree_size_bytes,
)
from tests.conftest import random_rects


class TestCollectStats:
    def test_entry_count_matches_len(self, rng):
        rects = random_rects(rng, 500)
        tree = bulk_load_str(rects, max_entries=20)
        stats = collect_stats(tree)
        assert stats.entry_count == 500

    def test_heights_agree(self, rng):
        tree = bulk_load_str(random_rects(rng, 500), max_entries=8)
        assert collect_stats(tree).height == tree.height

    def test_node_count_decomposition(self, rng):
        tree = bulk_load_str(random_rects(rng, 300), max_entries=8)
        stats = collect_stats(tree)
        # Every non-root node is a child entry of some internal node.
        assert stats.internal_entry_count == stats.node_count - 1

    def test_size_accounting(self, rng):
        tree = bulk_load_str(random_rects(rng, 100), max_entries=10)
        stats = collect_stats(tree)
        assert stats.size_bytes == (
            stats.entry_count + stats.internal_entry_count
        ) * BYTES_PER_ENTRY
        assert tree_size_bytes(tree) == stats.size_bytes

    def test_leaf_fill(self, rng):
        tree = bulk_load_str(random_rects(rng, 1000), max_entries=25)
        stats = collect_stats(tree)
        assert 20 <= stats.average_leaf_fill <= 25

    def test_empty_tree(self):
        tree = bulk_load_str(RectArray.empty())
        stats = collect_stats(tree)
        assert stats.entry_count == 0
        assert stats.size_bytes == 0
        assert stats.average_leaf_fill == 0.0

    def test_dynamic_tree_stats(self, rng):
        tree = RTree.from_rect_array(random_rects(rng, 200), max_entries=6)
        stats = collect_stats(tree)
        assert stats.entry_count == 200
        assert stats.leaf_count >= 200 / 6

    def test_size_grows_with_data(self, rng):
        small = tree_size_bytes(bulk_load_str(random_rects(rng, 100)))
        large = tree_size_bytes(bulk_load_str(random_rects(rng, 10_000)))
        assert large > 50 * small
