"""Unit tests for the packed (bulk-loaded) R-trees."""

import numpy as np
import pytest

from repro.geometry import Rect, RectArray
from repro.rtree import bulk_load_hilbert, bulk_load_str, pack_sorted
from tests.conftest import random_rects

LOADERS = [bulk_load_str, bulk_load_hilbert]


@pytest.mark.parametrize("loader", LOADERS)
class TestLoaders:
    def test_empty(self, loader):
        tree = loader(RectArray.empty())
        assert len(tree) == 0
        assert len(tree.search(Rect.unit())) == 0

    def test_single(self, loader):
        tree = loader(RectArray.from_rects([Rect(0, 0, 1, 1)]))
        assert len(tree) == 1
        assert tree.search(Rect(0.5, 0.5, 2, 2)).tolist() == [0]

    @pytest.mark.parametrize("n", [1, 7, 32, 33, 1000])
    def test_count_and_ids_preserved(self, loader, rng, n):
        rects = random_rects(rng, n)
        tree = loader(rects, max_entries=32)
        assert len(tree) == n
        ids = sorted(
            i for node in tree.root.walk() if node.is_leaf for i in node.entry_ids
        )
        assert ids == list(range(n))

    def test_queries_match_brute_force(self, loader, rng):
        rects = random_rects(rng, 800)
        tree = loader(rects, max_entries=16)
        for query in (Rect(0.1, 0.2, 0.4, 0.5), Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)):
            expected = np.nonzero(rects.intersects_rect(query))[0]
            assert tree.search(query).tolist() == expected.tolist()

    def test_leaves_well_filled(self, loader, rng):
        """Packed trees should fill leaves to ~100% (except the last)."""
        rects = random_rects(rng, 1000)
        tree = loader(rects, max_entries=25)
        leaves = [n for n in tree.root.walk() if n.is_leaf]
        full = [leaf for leaf in leaves if leaf.fanout == 25]
        assert len(full) >= len(leaves) - 1

    def test_mbr_invariants(self, loader, rng):
        rects = random_rects(rng, 500)
        tree = loader(rects, max_entries=8)
        for node in tree.root.walk():
            if not node.is_leaf:
                for child in node.children:
                    assert node.mbr[0] <= child.mbr[0]
                    assert node.mbr[2] >= child.mbr[2]

    def test_height_is_logarithmic(self, loader, rng):
        rects = random_rects(rng, 1024)
        tree = loader(rects, max_entries=32)
        assert tree.height <= 3


class TestPackSorted:
    def test_identity_order(self, rng):
        rects = random_rects(rng, 100)
        tree = pack_sorted(rects, np.arange(100))
        assert len(tree) == 100

    def test_rejects_non_permutation_shape(self, rng):
        rects = random_rects(rng, 10)
        with pytest.raises(ValueError):
            pack_sorted(rects, np.arange(5))

    def test_payloads_follow_original_indices(self, rng):
        rects = random_rects(rng, 50)
        order = np.arange(50)[::-1].copy()
        tree = pack_sorted(rects, order)
        query = rects[13]
        assert 13 in tree.search(query).tolist()


class TestPackingQuality:
    def test_str_beats_random_order_on_overlap(self, rng):
        """STR packing should produce far less leaf-MBR overlap than a
        random packing — the reason bulk loading matters for joins."""
        rects = random_rects(rng, 2000, max_side=0.01)

        def total_leaf_perimeter(tree):
            total = 0.0
            for node in tree.root.walk():
                if node.is_leaf:
                    total += (node.mbr[2] - node.mbr[0]) + (node.mbr[3] - node.mbr[1])
            return total

        str_tree = bulk_load_str(rects, max_entries=32)
        random_tree = pack_sorted(rects, rng.permutation(2000), max_entries=32)
        assert total_leaf_perimeter(str_tree) < 0.5 * total_leaf_perimeter(random_tree)

    def test_hilbert_close_to_str(self, rng):
        rects = random_rects(rng, 2000, max_side=0.01)

        def leaf_area(tree):
            return sum(
                (n.mbr[2] - n.mbr[0]) * (n.mbr[3] - n.mbr[1])
                for n in tree.root.walk()
                if n.is_leaf
            )

        ratio = leaf_area(bulk_load_hilbert(rects)) / leaf_area(bulk_load_str(rects))
        assert 0.2 < ratio < 5.0
