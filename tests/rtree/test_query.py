"""Unit tests for R-tree window queries."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.rtree import (
    RTree,
    bulk_load_str,
    count_intersecting,
    search_contained,
    search_intersecting,
)
from tests.conftest import random_rects


@pytest.fixture
def indexed(rng):
    rects = random_rects(rng, 600)
    return rects, bulk_load_str(rects, max_entries=16)


class TestSearchIntersecting:
    def test_matches_brute_force(self, indexed):
        rects, tree = indexed
        query = Rect(0.3, 0.1, 0.6, 0.4)
        expected = np.nonzero(rects.intersects_rect(query))[0]
        assert search_intersecting(tree.root, query).tolist() == expected.tolist()

    def test_result_sorted(self, indexed):
        _, tree = indexed
        out = search_intersecting(tree.root, Rect(0, 0, 1, 1))
        assert np.all(np.diff(out) >= 0)

    def test_no_hits_empty_array(self, indexed):
        _, tree = indexed
        out = search_intersecting(tree.root, Rect(5, 5, 6, 6))
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_point_query(self, indexed):
        rects, tree = indexed
        query = Rect.point(0.5, 0.5)
        expected = np.nonzero(rects.intersects_rect(query))[0]
        assert search_intersecting(tree.root, query).tolist() == expected.tolist()


class TestCountIntersecting:
    def test_matches_search_length(self, indexed):
        rects, tree = indexed
        for query in (Rect(0, 0, 0.5, 0.5), Rect(0.9, 0.9, 1, 1)):
            assert count_intersecting(tree.root, query) == len(
                search_intersecting(tree.root, query)
            )

    def test_full_extent_counts_everything(self, indexed):
        rects, tree = indexed
        assert count_intersecting(tree.root, Rect(0, 0, 1, 1)) == len(rects)


class TestSearchContained:
    def test_matches_brute_force(self, indexed):
        rects, tree = indexed
        query = Rect(0.2, 0.2, 0.8, 0.8)
        expected = np.nonzero(rects.contained_in_rect(query))[0]
        assert search_contained(tree.root, query).tolist() == expected.tolist()

    def test_containment_subset_of_intersection(self, indexed):
        _, tree = indexed
        query = Rect(0.3, 0.3, 0.7, 0.7)
        contained = set(search_contained(tree.root, query).tolist())
        intersecting = set(search_intersecting(tree.root, query).tolist())
        assert contained <= intersecting

    def test_no_hits(self, indexed):
        _, tree = indexed
        assert search_contained(tree.root, Rect.point(0.5, 0.5)).shape[0] in (0, 1)

    def test_works_on_dynamic_tree(self, rng):
        rects = random_rects(rng, 200)
        tree = RTree.from_rect_array(rects, max_entries=6)
        query = Rect(0.1, 0.1, 0.9, 0.9)
        expected = np.nonzero(rects.contained_in_rect(query))[0]
        assert search_contained(tree.root, query).tolist() == expected.tolist()
