"""Property-based tests of R-tree structure and query correctness."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, RectArray
from repro.rtree import RTree, bulk_load_hilbert, bulk_load_str

coordinate = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def rect_lists(draw, max_size=60):
    n = draw(st.integers(min_value=0, max_value=max_size))
    rects = []
    for _ in range(n):
        x1, x2 = draw(coordinate), draw(coordinate)
        y1, y2 = draw(coordinate), draw(coordinate)
        rects.append(Rect.from_points(x1, y1, x2, y2))
    return RectArray.from_rects(rects)


@st.composite
def query_rects(draw):
    x1, x2 = draw(coordinate), draw(coordinate)
    y1, y2 = draw(coordinate), draw(coordinate)
    return Rect.from_points(x1, y1, x2, y2)


def check_invariants(node, max_entries, is_root=True):
    if not is_root:
        assert node.fanout <= max_entries
    for child in node.children:
        assert child.level == node.level - 1
        assert node.mbr[0] <= child.mbr[0] and node.mbr[1] <= child.mbr[1]
        assert node.mbr[2] >= child.mbr[2] and node.mbr[3] >= child.mbr[3]
        check_invariants(child, max_entries, is_root=False)


@settings(max_examples=60, deadline=None)
@given(rect_lists(), query_rects(), st.sampled_from([4, 8]))
def test_dynamic_tree_query_matches_brute_force(rects, query, max_entries):
    tree = RTree.from_rect_array(rects, max_entries=max_entries)
    expected = np.nonzero(rects.intersects_rect(query))[0] if len(rects) else []
    assert tree.search(query).tolist() == list(expected)
    check_invariants(tree.root, max_entries)


@settings(max_examples=60, deadline=None)
@given(rect_lists(), query_rects(), st.sampled_from([bulk_load_str, bulk_load_hilbert]))
def test_packed_tree_query_matches_brute_force(rects, query, loader):
    tree = loader(rects, max_entries=8)
    expected = np.nonzero(rects.intersects_rect(query))[0] if len(rects) else []
    assert tree.search(query).tolist() == list(expected)
    check_invariants(tree.root, 8)


@settings(max_examples=40, deadline=None)
@given(rect_lists(max_size=40), rect_lists(max_size=40))
def test_join_count_matches_oracle(a, b):
    from repro.join import nested_loop_count
    from repro.rtree import rtree_join_count

    got = rtree_join_count(bulk_load_str(a, max_entries=4), bulk_load_str(b, max_entries=4))
    assert got == nested_loop_count(a, b)
