"""Unit tests for the dynamic Guttman R-tree."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.rtree import RTree
from tests.conftest import random_rects


def brute_force_ids(rects, query: Rect) -> np.ndarray:
    return np.nonzero(rects.intersects_rect(query))[0]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 1
        assert len(tree.search(Rect.unit())) == 0

    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)

    def test_bad_min_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=0)

    def test_single_insert(self):
        tree = RTree()
        tree.insert(Rect(0, 0, 1, 1), 42)
        assert len(tree) == 1
        assert tree.search(Rect(0.5, 0.5, 2, 2)).tolist() == [42]

    def test_extend(self):
        tree = RTree()
        tree.extend([(Rect(0, 0, 1, 1), 0), (Rect(2, 2, 3, 3), 1)])
        assert len(tree) == 2

    def test_height_grows_with_splits(self, rng):
        tree = RTree(max_entries=4)
        rects = random_rects(rng, 200)
        for i, r in enumerate(rects):
            tree.insert(r, i)
        assert tree.height >= 3
        assert len(tree) == 200


class TestQueryCorrectness:
    @pytest.mark.parametrize("max_entries", [4, 8, 32])
    def test_search_matches_brute_force(self, rng, max_entries):
        rects = random_rects(rng, 500)
        tree = RTree.from_rect_array(rects, max_entries=max_entries)
        for query in (
            Rect(0.1, 0.1, 0.3, 0.3),
            Rect(0, 0, 1, 1),
            Rect(0.5, 0.5, 0.500001, 0.500001),
            Rect(2, 2, 3, 3),  # off-data
        ):
            assert tree.search(query).tolist() == brute_force_ids(rects, query).tolist()

    def test_count_matches_search(self, rng):
        rects = random_rects(rng, 300)
        tree = RTree.from_rect_array(rects)
        query = Rect(0.2, 0.2, 0.7, 0.9)
        assert tree.count(query) == len(tree.search(query))

    def test_duplicate_rects_all_found(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert(Rect(0.4, 0.4, 0.6, 0.6), i)
        assert tree.search(Rect(0.5, 0.5, 0.5, 0.5)).tolist() == list(range(20))

    def test_point_entries(self, rng):
        from repro.geometry import RectArray

        x, y = rng.random(100), rng.random(100)
        points = RectArray.from_points(x, y)
        tree = RTree.from_rect_array(points, max_entries=8)
        query = Rect(0.25, 0.25, 0.75, 0.75)
        assert tree.search(query).tolist() == brute_force_ids(points, query).tolist()


class TestStructuralInvariants:
    def _check_node(self, node, max_entries, is_root):
        if not is_root:
            assert node.fanout <= max_entries
        if node.is_leaf:
            coords = node.entry_coords
            if coords.shape[0]:
                assert node.mbr[0] == coords[:, 0].min()
                assert node.mbr[1] == coords[:, 1].min()
                assert node.mbr[2] == coords[:, 2].max()
                assert node.mbr[3] == coords[:, 3].max()
        else:
            assert node.children
            for child in node.children:
                assert child.level == node.level - 1
                assert node.mbr[0] <= child.mbr[0]
                assert node.mbr[1] <= child.mbr[1]
                assert node.mbr[2] >= child.mbr[2]
                assert node.mbr[3] >= child.mbr[3]
                self._check_node(child, max_entries, is_root=False)

    @pytest.mark.parametrize("n", [1, 5, 33, 200])
    @pytest.mark.parametrize("max_entries", [4, 16])
    def test_invariants_after_inserts(self, rng, n, max_entries):
        rects = random_rects(rng, n)
        tree = RTree.from_rect_array(rects, max_entries=max_entries)
        self._check_node(tree.root, max_entries, is_root=True)

    def test_all_leaves_same_level(self, rng):
        tree = RTree.from_rect_array(random_rects(rng, 400), max_entries=4)
        leaf_levels = {n.level for n in tree.root.walk() if n.is_leaf}
        assert leaf_levels == {0}

    def test_entry_count_preserved(self, rng):
        rects = random_rects(rng, 333)
        tree = RTree.from_rect_array(rects, max_entries=5)
        total = sum(n.fanout for n in tree.root.walk() if n.is_leaf)
        assert total == 333
