"""FlatRTree: SoA structure invariants, bit-identity to the object
engine, the randomized naive-agreement property (zero-area and
coincident rects included), and runtime preemption coverage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimationTimeout
from repro.geometry import Rect, RectArray
from repro.join.naive import nested_loop_count, nested_loop_pairs
from repro.join.partition import canonical_pair_order
from repro.rtree import (
    FlatRTree,
    bulk_load_hilbert,
    bulk_load_str,
    flat_join_count,
    flat_join_pairs,
    flat_load_hilbert,
    flat_load_str,
    rtree_join_count,
)
from repro.runtime import Deadline, runtime_scope
from tests.conftest import random_rects


@pytest.fixture
def rects(rng) -> RectArray:
    return random_rects(rng, 500)


class TestStructure:
    def test_mirrors_object_tree_shape(self, rects):
        flat = flat_load_str(rects, max_entries=8)
        obj = bulk_load_str(rects, max_entries=8)
        assert len(flat) == len(rects)
        assert flat.height == obj.height
        assert flat.root_mbr == tuple(obj.root.mbr)

    def test_level_arrays_are_consistent(self, rects):
        flat = flat_load_str(rects, max_entries=8)
        # Level 0 ranges partition the entries; level l ranges partition
        # level l-1; the root level has exactly one node.
        below = len(rects)
        for start, count, mbrs in zip(
            flat.level_start, flat.level_count, flat.level_mbrs
        ):
            assert len(start) == len(count) == len(mbrs)
            assert start[0] == 0
            assert int((count > 0).all())
            assert int(count.sum()) == below
            assert np.array_equal(start, np.cumsum(count) - count)
            below = len(mbrs)
        assert len(flat.level_mbrs[-1]) == 1

    def test_parent_mbrs_contain_children(self, rects):
        flat = flat_load_str(rects, max_entries=8)
        level0 = flat.level_mbrs[0]
        coords = flat.entry_coords
        for node in range(len(level0)):
            s = flat.level_start[0][node]
            c = flat.level_count[0][node]
            box = level0[node]
            assert (coords[s : s + c, 0] >= box[0]).all()
            assert (coords[s : s + c, 2] <= box[2]).all()

    def test_leaf_blocks_padded_with_sentinels(self, rng):
        rects = random_rects(rng, 21)  # 21 = 2 leaves of 16 + tail of 5
        flat = flat_load_str(rects, max_entries=16)
        xmin, ymin, xmax, ymax = flat.leaf_blocks
        assert xmin.shape == (2, 16)
        assert np.isposinf(xmin[1, 5:]).all()
        assert np.isneginf(xmax[1, 5:]).all()
        # Non-pad slots carry the packed coordinates verbatim.
        assert np.array_equal(xmin.reshape(-1)[:21], flat.entry_coords[:, 0])

    def test_entry_ids_are_a_permutation(self, rects):
        flat = flat_load_str(rects)
        assert np.array_equal(np.sort(flat.entry_ids), np.arange(len(rects)))

    def test_size_bytes_counts_all_arrays(self, rects):
        flat = flat_load_str(rects)
        floor = flat.entry_coords.nbytes + flat.entry_ids.nbytes
        assert flat.size_bytes > floor

    def test_empty_tree(self):
        flat = flat_load_str(RectArray.empty())
        assert len(flat) == 0
        assert flat.height == 0
        assert flat.node_count == 0
        with pytest.raises(ValueError):
            flat.root_mbr

    def test_single_entry_tree(self):
        flat = flat_load_str(RectArray.from_rects([Rect(0.1, 0.2, 0.3, 0.4)]))
        assert flat.height == 1
        assert flat.root_mbr == (0.1, 0.2, 0.3, 0.4)

    def test_invalid_inputs_rejected(self, rects):
        with pytest.raises(ValueError, match="max_entries"):
            FlatRTree.from_order(rects, np.arange(len(rects)), max_entries=1)
        with pytest.raises(ValueError, match="permutation"):
            FlatRTree.from_order(rects, np.arange(3))

    def test_repr(self, rects):
        assert "FlatRTree" in repr(flat_load_str(rects))


class TestBitIdentity:
    """The differential contract: flat counts == object-tree counts."""

    def test_matches_object_engine(self, rng):
        for n1, n2 in [(1, 1), (40, 31), (500, 700), (2000, 900)]:
            a, b = random_rects(rng, n1), random_rects(rng, n2)
            want = rtree_join_count(bulk_load_str(a), bulk_load_str(b))
            assert flat_join_count(flat_load_str(a), flat_load_str(b)) == want

    def test_matches_under_hilbert_packing(self, rng):
        a, b = random_rects(rng, 600), random_rects(rng, 450)
        want = rtree_join_count(bulk_load_hilbert(a), bulk_load_hilbert(b))
        assert flat_join_count(flat_load_hilbert(a), flat_load_hilbert(b)) == want

    def test_duplicate_and_degenerate_rects(self):
        a = RectArray.from_rects([Rect(0.5, 0.5, 0.5, 0.5)] * 10)
        b = RectArray.from_rects([Rect(0.5, 0.5, 0.5, 0.5)] * 7)
        assert flat_join_count(flat_load_str(a), flat_load_str(b)) == 70

    def test_mixed_max_entries(self, rng):
        a, b = random_rects(rng, 300), random_rects(rng, 300)
        want = nested_loop_count(a, b)
        got = flat_join_count(
            flat_load_str(a, max_entries=4), flat_load_str(b, max_entries=32)
        )
        assert got == want

    def test_tiny_block_chunking_is_invisible(self, rng):
        a, b = random_rects(rng, 200), random_rects(rng, 150)
        fa, fb = flat_load_str(a), flat_load_str(b)
        want = flat_join_count(fa, fb)
        assert flat_join_count(fa, fb, block=3) == want
        assert np.array_equal(flat_join_pairs(fa, fb, block=3), flat_join_pairs(fa, fb))

    def test_block_must_be_positive(self, rects):
        flat = flat_load_str(rects)
        with pytest.raises(ValueError, match="block"):
            flat_join_count(flat, flat, block=0)
        with pytest.raises(ValueError, match="block"):
            flat_join_pairs(flat, flat, block=-1)

    def test_empty_sides(self, rects):
        flat = flat_load_str(rects)
        empty = flat_load_str(RectArray.empty())
        assert flat_join_count(flat, empty) == 0
        assert flat_join_count(empty, flat) == 0
        assert flat_join_pairs(empty, empty).shape == (0, 2)

    def test_pairs_are_canonically_ordered_payload_ids(self, rng):
        a, b = random_rects(rng, 250), random_rects(rng, 250)
        got = flat_join_pairs(flat_load_str(a), flat_load_str(b))
        assert np.array_equal(got, canonical_pair_order(nested_loop_pairs(a, b)))
        # Hilbert packing permutes the entries but not the payload ids.
        got_h = flat_join_pairs(flat_load_hilbert(a), flat_load_hilbert(b))
        assert np.array_equal(got_h, got)


class TestRuntimeIntegration:
    def test_expired_deadline_preempts_join(self, rng):
        a, b = random_rects(rng, 400, max_side=0.2), random_rects(rng, 400, max_side=0.2)
        fa, fb = flat_load_str(a), flat_load_str(b)
        with runtime_scope(deadline=Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                flat_join_count(fa, fb)

    def test_checkpoint_fires_per_block(self, rng):
        a, b = random_rects(rng, 300, max_side=0.2), random_rects(rng, 300, max_side=0.2)
        fa, fb = flat_load_str(a), flat_load_str(b)
        stages: list[str] = []

        class Recorder:
            def on_checkpoint(self, stage):
                stages.append(stage)

        with runtime_scope(hook=Recorder()):
            flat_join_count(fa, fb, block=64)
        assert "rtree.flat.descend" in stages
        assert "rtree.flat.leaf" in stages


# ----------------------------------------------------------------------
# Property: agreement with the naive oracle on adversarial small inputs.
# ----------------------------------------------------------------------

#: A tiny shared coordinate pool forces coincident edges and duplicate
#: rects; width/height 0 draws produce zero-area rects and points.
_COORD_POOL = [0.0, 0.125, 0.25, 0.5, 0.625, 0.75, 1.0]


@st.composite
def pooled_rect_arrays(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    rects = []
    for _ in range(n):
        x0 = draw(st.sampled_from(_COORD_POOL))
        y0 = draw(st.sampled_from(_COORD_POOL))
        w = draw(st.sampled_from([0.0, 0.0, 0.125, 0.25]))  # 0 twice: favor degeneracy
        h = draw(st.sampled_from([0.0, 0.0, 0.125, 0.25]))
        rects.append(Rect(x0, y0, min(1.0, x0 + w), min(1.0, y0 + h)))
    return RectArray.from_rects(rects)


@settings(max_examples=80, deadline=None)
@given(pooled_rect_arrays(), pooled_rect_arrays(), st.sampled_from([2, 3, 8]))
def test_property_flat_pairs_equal_naive(a, b, max_entries):
    got = flat_join_pairs(
        flat_load_str(a, max_entries=max_entries),
        flat_load_str(b, max_entries=max_entries),
    )
    want = canonical_pair_order(nested_loop_pairs(a, b))
    assert np.array_equal(got, want)
    assert flat_join_count(
        flat_load_str(a, max_entries=max_entries),
        flat_load_str(b, max_entries=max_entries),
    ) == len(want)
