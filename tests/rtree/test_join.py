"""Unit tests for the synchronized-traversal R-tree join."""

import numpy as np
import pytest

from repro.geometry import Rect, RectArray
from repro.join import nested_loop_count, nested_loop_pairs
from repro.rtree import (
    RTree,
    bulk_load_hilbert,
    bulk_load_str,
    iter_join_pairs,
    rtree_join_count,
    rtree_join_pairs,
)
from tests.conftest import random_rects


class TestJoinCount:
    def test_empty_inputs(self):
        empty = bulk_load_str(RectArray.empty())
        full = bulk_load_str(RectArray.from_rects([Rect(0, 0, 1, 1)]))
        assert rtree_join_count(empty, full) == 0
        assert rtree_join_count(full, empty) == 0
        assert rtree_join_count(empty, empty) == 0

    def test_matches_nested_loop(self, two_rect_sets):
        a, b = two_rect_sets
        expected = nested_loop_count(a, b)
        assert rtree_join_count(bulk_load_str(a), bulk_load_str(b)) == expected

    def test_mixed_tree_kinds(self, two_rect_sets):
        a, b = two_rect_sets
        expected = nested_loop_count(a, b)
        assert rtree_join_count(bulk_load_hilbert(a), bulk_load_str(b)) == expected
        assert (
            rtree_join_count(RTree.from_rect_array(a, max_entries=8), bulk_load_str(b))
            == expected
        )

    def test_unequal_heights(self, rng):
        a = random_rects(rng, 2000)
        b = random_rects(rng, 10)
        ta = bulk_load_str(a, max_entries=8)  # taller
        tb = bulk_load_str(b, max_entries=8)  # single leaf-ish
        assert ta.root.level > tb.root.level
        assert rtree_join_count(ta, tb) == nested_loop_count(a, b)
        assert rtree_join_count(tb, ta) == nested_loop_count(b, a)

    def test_self_join(self, rng):
        a = random_rects(rng, 300)
        tree = bulk_load_str(a)
        assert rtree_join_count(tree, tree) == nested_loop_count(a, a)

    def test_touching_rects_counted(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(1, 0, 2, 1), Rect(1, 1, 2, 2)])
        assert rtree_join_count(bulk_load_str(a), bulk_load_str(b)) == 2

    def test_all_disjoint(self, rng):
        a = random_rects(rng, 100, extent=Rect(0, 0, 1, 1))
        b = random_rects(rng, 100, extent=Rect(10, 10, 11, 11))
        assert rtree_join_count(bulk_load_str(a), bulk_load_str(b)) == 0


class TestJoinPairs:
    def test_matches_nested_loop_pairs(self, two_rect_sets):
        a, b = two_rect_sets
        expected = nested_loop_pairs(a, b)
        got = rtree_join_pairs(bulk_load_str(a), bulk_load_str(b))
        assert np.array_equal(got, expected)

    def test_pair_order_independent_of_packing(self, two_rect_sets):
        a, b = two_rect_sets
        p1 = rtree_join_pairs(bulk_load_str(a), bulk_load_str(b))
        p2 = rtree_join_pairs(bulk_load_hilbert(a), bulk_load_hilbert(b))
        assert np.array_equal(p1, p2)

    def test_empty_pairs_shape(self):
        empty = bulk_load_str(RectArray.empty())
        pairs = rtree_join_pairs(empty, empty)
        assert pairs.shape == (0, 2)

    def test_iter_join_pairs_same_set(self, two_rect_sets):
        a, b = two_rect_sets
        expected = {tuple(row) for row in nested_loop_pairs(a, b)}
        got = set(iter_join_pairs(bulk_load_str(a), bulk_load_str(b)))
        assert got == expected

    def test_pairs_consistent_with_count(self, two_rect_sets):
        a, b = two_rect_sets
        ta, tb = bulk_load_str(a), bulk_load_str(b)
        assert len(rtree_join_pairs(ta, tb)) == rtree_join_count(ta, tb)


class TestStressShapes:
    @pytest.mark.parametrize("max_entries", [4, 64])
    def test_extreme_fanouts(self, rng, max_entries):
        a = random_rects(rng, 500)
        b = random_rects(rng, 500)
        got = rtree_join_count(
            bulk_load_str(a, max_entries=max_entries),
            bulk_load_str(b, max_entries=max_entries),
        )
        assert got == nested_loop_count(a, b)

    def test_points_vs_rects(self, rng):
        points = RectArray.from_points(rng.random(400), rng.random(400))
        rects = random_rects(rng, 400)
        got = rtree_join_count(bulk_load_str(points), bulk_load_str(rects))
        assert got == nested_loop_count(points, rects)

    def test_skewed_data(self, rng):
        # Heavy clustering stresses the traversal pruning.
        cx = 0.5 + 0.01 * rng.standard_normal(1000)
        cy = 0.5 + 0.01 * rng.standard_normal(1000)
        a = RectArray.from_centers(cx, cy, 0.005, 0.005)
        b = random_rects(rng, 500)
        assert rtree_join_count(bulk_load_str(a), bulk_load_str(b)) == nested_loop_count(a, b)
