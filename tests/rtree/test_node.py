"""Unit tests for the shared Node structure."""

import numpy as np
import pytest

from repro.rtree import Node
from repro.rtree.node import EMPTY_MBR, mbr_of_coords


class TestMbrOfCoords:
    def test_empty_is_sentinel(self):
        assert mbr_of_coords(np.empty((0, 4))) == EMPTY_MBR

    def test_single(self):
        assert mbr_of_coords(np.array([[0.0, 1.0, 2.0, 3.0]])) == (0, 1, 2, 3)

    def test_multiple(self):
        coords = np.array([[0, 0, 1, 1], [2, -1, 3, 0.5]], dtype=float)
        assert mbr_of_coords(coords) == (0, -1, 3, 1)


class TestNode:
    def test_leaf_basic(self):
        node = Node(0, entry_coords=np.array([[0, 0, 1, 1]]), entry_ids=np.array([7]))
        assert node.is_leaf
        assert node.fanout == 1
        assert node.mbr == (0, 0, 1, 1)

    def test_leaf_rejects_children(self):
        child = Node(0)
        with pytest.raises(ValueError):
            Node(0, children=[child])

    def test_leaf_rejects_id_mismatch(self):
        with pytest.raises(ValueError):
            Node(0, entry_coords=np.array([[0, 0, 1, 1]]), entry_ids=np.array([1, 2]))

    def test_internal_rejects_entries(self):
        with pytest.raises(ValueError):
            Node(1, entry_coords=np.array([[0, 0, 1, 1]]), entry_ids=np.array([0]))

    def test_internal_mbr_covers_children(self):
        a = Node(0, entry_coords=np.array([[0, 0, 1, 1]]), entry_ids=np.array([0]))
        b = Node(0, entry_coords=np.array([[2, 2, 3, 3]]), entry_ids=np.array([1]))
        parent = Node(1, children=[a, b])
        assert parent.mbr == (0, 0, 3, 3)
        assert parent.fanout == 2

    def test_empty_node_intersects_nothing(self):
        node = Node(0)
        assert not node.mbr_intersects((0, 0, 1e12, 1e12))

    def test_mbr_intersects(self):
        node = Node(0, entry_coords=np.array([[0, 0, 1, 1]]), entry_ids=np.array([0]))
        assert node.mbr_intersects((1, 1, 2, 2))  # touching corner
        assert not node.mbr_intersects((2, 2, 3, 3))

    def test_child_mbr_array(self):
        a = Node(0, entry_coords=np.array([[0, 0, 1, 1]]), entry_ids=np.array([0]))
        parent = Node(1, children=[a])
        arr = parent.child_mbr_array()
        assert arr.shape == (1, 4)
        with pytest.raises(ValueError):
            a.child_mbr_array()

    def test_walk_visits_all(self):
        leaves = [
            Node(0, entry_coords=np.array([[i, i, i + 1.0, i + 1.0]]), entry_ids=np.array([i]))
            for i in range(3)
        ]
        root = Node(1, children=leaves)
        visited = list(root.walk())
        assert len(visited) == 4
        assert visited[0] is root

    def test_repr(self):
        assert "leaf" in repr(Node(0))
        assert "internal" in repr(Node(2, children=[Node(1, children=[Node(0)])]))
