"""Unit tests for the R*-tree split strategy."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.rtree import RTree
from tests.conftest import random_rects


class TestRStarSplit:
    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="split"):
            RTree(split="linear")

    def test_queries_match_brute_force(self, rng):
        rects = random_rects(rng, 600)
        tree = RTree.from_rect_array(rects, max_entries=8, split="rstar")
        for query in (Rect(0.1, 0.1, 0.4, 0.4), Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)):
            expected = np.nonzero(rects.intersects_rect(query))[0]
            assert tree.search(query).tolist() == expected.tolist()

    def test_structural_invariants(self, rng):
        rects = random_rects(rng, 400)
        tree = RTree.from_rect_array(rects, max_entries=6, split="rstar")
        for node in tree.root.walk():
            if node is not tree.root:
                assert tree.min_entries <= node.fanout <= tree.max_entries
            for child in node.children:
                assert node.mbr[0] <= child.mbr[0] and node.mbr[2] >= child.mbr[2]

    def test_min_fill_respected_by_distributions(self, rng):
        rects = random_rects(rng, 300)
        tree = RTree.from_rect_array(rects, max_entries=8, min_entries=4, split="rstar")
        for node in tree.root.walk():
            if node is not tree.root:
                assert node.fanout >= 4

    def test_rstar_reduces_leaf_area(self, rng):
        """The point of the topological split: squarer, tighter leaves."""
        rects = random_rects(rng, 3000, max_side=0.02)

        def leaf_area(tree):
            return sum(
                (n.mbr[2] - n.mbr[0]) * (n.mbr[3] - n.mbr[1])
                for n in tree.root.walk()
                if n.is_leaf
            )

        quad = RTree.from_rect_array(rects, max_entries=8)
        rstar = RTree.from_rect_array(rects, max_entries=8, split="rstar")
        assert leaf_area(rstar) <= leaf_area(quad) * 1.05

    def test_join_result_unchanged(self, rng):
        from repro.join import nested_loop_count
        from repro.rtree import bulk_load_str, rtree_join_count

        a = random_rects(rng, 400)
        b = random_rects(rng, 400)
        rstar_tree = RTree.from_rect_array(a, max_entries=8, split="rstar")
        assert rtree_join_count(rstar_tree, bulk_load_str(b)) == nested_loop_count(a, b)

    def test_delete_works_with_rstar(self, rng):
        rects = random_rects(rng, 100)
        tree = RTree.from_rect_array(rects, max_entries=5, split="rstar")
        for i in range(50):
            assert tree.delete(rects[i], i)
        assert len(tree) == 50

    def test_skewed_data(self, rng):
        # Highly clustered input stresses tie-breaking in the split.
        cx = 0.5 + 0.001 * rng.standard_normal(500)
        cy = 0.5 + 0.001 * rng.standard_normal(500)
        from repro.geometry import RectArray

        rects = RectArray.from_centers(cx, cy, 0.001, 0.001)
        tree = RTree.from_rect_array(rects, max_entries=6, split="rstar")
        assert len(tree) == 500
        assert tree.count(Rect(0.45, 0.45, 0.55, 0.55)) == 500
