"""Unit tests for R-tree deletion (Guttman Delete + CondenseTree)."""

import numpy as np

from repro.geometry import Rect
from repro.rtree import RTree
from tests.conftest import random_rects


def verify_invariants(tree: RTree):
    for node in tree.root.walk():
        if node is not tree.root:
            assert node.fanout <= tree.max_entries
        for child in node.children:
            assert child.level == node.level - 1
            assert node.mbr[0] <= child.mbr[0] and node.mbr[1] <= child.mbr[1]
            assert node.mbr[2] >= child.mbr[2] and node.mbr[3] >= child.mbr[3]


class TestDelete:
    def test_delete_existing_entry(self, rng):
        rects = random_rects(rng, 50)
        tree = RTree.from_rect_array(rects, max_entries=8)
        assert tree.delete(rects[7], 7)
        assert len(tree) == 49
        assert 7 not in tree.search(rects[7]).tolist()

    def test_delete_missing_entry(self, rng):
        rects = random_rects(rng, 20)
        tree = RTree.from_rect_array(rects, max_entries=8)
        assert not tree.delete(Rect(5, 5, 6, 6), 99)
        assert len(tree) == 20

    def test_delete_requires_matching_payload(self, rng):
        rects = random_rects(rng, 20)
        tree = RTree.from_rect_array(rects, max_entries=8)
        assert not tree.delete(rects[3], 999)
        assert len(tree) == 20

    def test_delete_all_one_by_one(self, rng):
        rects = random_rects(rng, 120)
        tree = RTree.from_rect_array(rects, max_entries=4)
        order = rng.permutation(120)
        for i in order:
            assert tree.delete(rects[int(i)], int(i))
            verify_invariants(tree)
        assert len(tree) == 0
        assert len(tree.search(Rect.unit())) == 0

    def test_queries_correct_after_random_deletes(self, rng):
        rects = random_rects(rng, 300)
        tree = RTree.from_rect_array(rects, max_entries=6)
        removed = set(rng.choice(300, size=150, replace=False).tolist())
        for i in removed:
            assert tree.delete(rects[int(i)], int(i))
        remaining = np.array(sorted(set(range(300)) - removed))
        query = Rect(0.2, 0.2, 0.8, 0.7)
        expected = [
            int(i) for i in remaining if rects[int(i)].intersects(query)
        ]
        assert tree.search(query).tolist() == expected
        assert len(tree) == 150

    def test_duplicate_rects_deleted_individually(self):
        tree = RTree(max_entries=4)
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        for i in range(10):
            tree.insert(rect, i)
        assert tree.delete(rect, 5)
        hits = tree.search(rect).tolist()
        assert 5 not in hits
        assert len(hits) == 9

    def test_root_collapse(self, rng):
        rects = random_rects(rng, 100)
        tree = RTree.from_rect_array(rects, max_entries=4)
        tall_height = tree.height
        for i in range(99):
            tree.delete(rects[i], i)
        assert tree.height < tall_height
        assert len(tree) == 1

    def test_interleaved_insert_delete(self, rng):
        """Fuzz: random mix of inserts and deletes against a model set."""
        tree = RTree(max_entries=5)
        model: dict[int, Rect] = {}
        next_id = 0
        pool = random_rects(rng, 500)
        for step in range(400):
            if model and rng.random() < 0.4:
                victim = int(rng.choice(list(model)))
                assert tree.delete(model.pop(victim), victim)
            else:
                rect = pool[next_id % len(pool)]
                tree.insert(rect, next_id)
                model[next_id] = rect
                next_id += 1
        assert len(tree) == len(model)
        query = Rect(0.1, 0.1, 0.6, 0.9)
        expected = sorted(i for i, r in model.items() if r.intersects(query))
        assert tree.search(query).tolist() == expected
        verify_invariants(tree)

    def test_delete_from_empty_tree(self):
        tree = RTree()
        assert not tree.delete(Rect.unit(), 0)
