"""EstimationServer: the admission → rung → descent pipeline end to end."""

import asyncio

import pytest

from repro.errors import EstimatorUnavailable, ServiceOverloadError
from repro.histograms import GHHistogram
from repro.serve import (
    DegradePolicy,
    EstimationServer,
    ServeRequest,
    ServerConfig,
)


def serve_one(server, request):
    async def go():
        async with server:
            return await server.submit(request)

    return asyncio.run(go())


class TestHealthyPath:
    def test_full_rung_matches_direct_estimation(self, catalog):
        ds1, ds2 = catalog["roads"], catalog["rivers"]
        expected = GHHistogram.build(ds1, 5).estimate_selectivity(
            GHHistogram.build(ds2, 5)
        )
        server = EstimationServer(catalog)
        response = serve_one(server, ServeRequest("roads", "rivers", level=5))
        assert response.selectivity == pytest.approx(expected, rel=0, abs=0)
        assert response.provenance.rung == "full"
        assert response.provenance.via == "batch"
        assert not response.degraded
        assert response.provenance.reason == ""
        assert response.latency_s >= 0.0

    def test_concurrent_requests_coalesce(self, catalog):
        server = EstimationServer(catalog, ServerConfig(max_delay_s=0.01))

        async def go():
            async with server:
                return await asyncio.gather(
                    *[server.submit(ServeRequest("roads", "parks", level=4))
                      for _ in range(6)]
                )

        responses = asyncio.run(go())
        values = {r.selectivity for r in responses}
        assert len(values) == 1  # identical queries, identical answers
        assert server.batcher.stats.coalesced > 0

    def test_catalog_accepts_iterables(self, catalog):
        server = EstimationServer(list(catalog.values()))
        assert sorted(server.catalog) == ["parks", "rivers", "roads"]


class TestPressureDegradation:
    def test_rungs_cheapen_as_the_queue_fills(self, catalog):
        config = ServerConfig(
            max_depth=4,
            policy=DegradePolicy(cached_at=0.2, parametric_at=0.5, shed_at=0.75),
            max_delay_s=0.005,
        )
        server = EstimationServer(catalog, config)

        async def go():
            async with server:
                return await asyncio.gather(
                    *[server.submit(ServeRequest("roads", "rivers")) for _ in range(4)],
                    return_exceptions=True,
                )

        outcomes = asyncio.run(go())
        # Admission is synchronous and in task order, and each request
        # measures the pressure of its *peers* (its own slot excluded),
        # so the pressures seen are 0.0, 0.25, 0.5, 0.75 — one per rung.
        assert outcomes[0].provenance.rung == "full"
        assert outcomes[1].provenance.rung == "cached-coarse"
        assert outcomes[1].degraded
        assert "pressure" in outcomes[1].provenance.reason
        assert outcomes[2].provenance.rung == "parametric"
        assert isinstance(outcomes[3], ServiceOverloadError)
        assert outcomes[3].reason == "shed"
        assert server.ladder.snapshot()["shed"] == 1

    def test_cached_rung_coarsens_by_policy(self, catalog):
        # max_depth=2: the second concurrent request sees one peer ahead
        # of it, i.e. pressure 0.5 >= cached_at.
        config = ServerConfig(
            max_depth=2,
            policy=DegradePolicy(cached_at=0.4, coarsen_by=3),
            max_delay_s=0.005,
        )
        server = EstimationServer(catalog, config)

        async def go():
            async with server:
                return await asyncio.gather(
                    server.submit(ServeRequest("roads", "rivers", level=7)),
                    server.submit(ServeRequest("roads", "rivers", level=7)),
                )

        first, second = asyncio.run(go())
        assert second.provenance.rung == "cached-coarse"
        assert second.provenance.requested == "gh(level=7)"
        # The coarse answer equals a direct level-4 estimate.
        ds1, ds2 = catalog["roads"], catalog["rivers"]
        coarse = GHHistogram.build(ds1, 4).estimate_selectivity(
            GHHistogram.build(ds2, 4)
        )
        assert second.selectivity == pytest.approx(coarse, rel=1e-12)

    def test_depth_one_server_still_answers(self, catalog):
        # Regression: when pressure counted the request's own slot,
        # max_depth=1 made every admitted request see 1.0 >= shed_at
        # and the server could never answer anything.
        server = EstimationServer(catalog, ServerConfig(max_depth=1))
        response = serve_one(server, ServeRequest("roads", "rivers", level=5))
        assert response.provenance.rung == "full"
        assert not response.degraded

    def test_queue_full_rejection_counts_as_shed(self, catalog):
        server = EstimationServer(catalog, ServerConfig(max_depth=1))

        async def go():
            async with server:
                return await asyncio.gather(
                    server.submit(ServeRequest("roads", "rivers")),
                    server.submit(ServeRequest("roads", "rivers")),
                    server.submit(ServeRequest("roads", "rivers")),
                    return_exceptions=True,
                )

        outcomes = asyncio.run(go())
        sheds = [o for o in outcomes if isinstance(o, ServiceOverloadError)]
        assert sheds and all(o.reason in ("queue-full", "shed") for o in sheds)
        assert server.admission.stats.rejected + server.ladder.snapshot()[
            "shed"
        ] >= len(sheds)


class TestFailureDescent:
    def test_full_failure_descends_to_cached(self, catalog):
        def broken_runner(queries, deadline_s):
            raise OSError("estimator tier is down")

        server = EstimationServer(catalog, batch_runner=broken_runner)
        response = serve_one(server, ServeRequest("roads", "rivers", level=6))
        assert response.provenance.rung == "cached-coarse"
        assert response.degraded
        assert "OSError" in response.provenance.reason
        # The answer is still a real estimate, not a guess.
        ds1, ds2 = catalog["roads"], catalog["rivers"]
        coarse = GHHistogram.build(ds1, 3).estimate_selectivity(
            GHHistogram.build(ds2, 3)
        )
        assert response.selectivity == pytest.approx(coarse, rel=1e-12)

    def test_zero_deadline_falls_to_the_parametric_floor(self, catalog):
        server = EstimationServer(catalog)
        response = serve_one(
            server, ServeRequest("roads", "rivers", timeout_s=0.0)
        )
        assert response.provenance.rung == "parametric"
        assert response.degraded
        assert "EstimationTimeout" in response.provenance.reason
        assert response.selectivity > 0.0

    def test_unknown_dataset_fails_the_request_not_the_ladder(self, catalog):
        server = EstimationServer(catalog)
        with pytest.raises(ValueError, match="unknown dataset"):
            serve_one(server, ServeRequest("roads", "oceans"))
        # Nothing was recorded as answered: the ladder never ran.
        assert sum(server.ladder.snapshot().values()) == 0
        assert server.admission.depth == 0  # the ticket was released

    def test_descent_failure_does_not_leak_queue_slots(self, catalog):
        def broken_runner(queries, deadline_s):
            raise OSError("down")

        server = EstimationServer(catalog, batch_runner=broken_runner)

        async def go():
            async with server:
                for _ in range(3):
                    await server.submit(ServeRequest("roads", "rivers"))

        asyncio.run(go())
        assert server.admission.depth == 0


class TestTenancyAndLifecycle:
    def test_tenant_quota_enforced_through_submit(self, catalog):
        server = EstimationServer(
            catalog, ServerConfig(tenant_rate=0.001, tenant_burst=1.0)
        )

        async def go():
            async with server:
                await server.submit(ServeRequest("roads", "rivers", tenant="t1"))
                with pytest.raises(ServiceOverloadError) as exc_info:
                    await server.submit(ServeRequest("roads", "rivers", tenant="t1"))
                assert exc_info.value.reason == "quota"
                # Another tenant is unaffected.
                await server.submit(ServeRequest("roads", "rivers", tenant="t2"))

        asyncio.run(go())

    def test_closed_server_rejects_submissions(self, catalog):
        server = EstimationServer(catalog)

        async def go():
            await server.aclose()
            with pytest.raises(EstimatorUnavailable):
                await server.submit(ServeRequest("roads", "rivers"))

        asyncio.run(go())

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            EstimationServer({})

    def test_stats_cover_every_stage(self, catalog):
        server = EstimationServer(catalog)
        serve_one(server, ServeRequest("roads", "rivers"))
        snap = server.stats()
        for key in ("admission", "rungs", "batcher", "cache", "pressure"):
            assert key in snap
        assert snap["rungs"]["full"] == 1


class TestShardedFullRung:
    def test_full_rung_runs_through_the_pool(self, catalog):
        from repro.serve import ShardPool

        with ShardPool(catalog, 2) as pool:
            server = EstimationServer(catalog, shard_pool=pool)
            response = serve_one(server, ServeRequest("roads", "rivers", level=5))
            assert response.provenance.via == "shards"
            assert response.provenance.shard_ids == (0, 1)
            expected = GHHistogram.build(catalog["roads"], 5).estimate_selectivity(
                GHHistogram.build(catalog["rivers"], 5)
            )
            assert response.selectivity == pytest.approx(expected, rel=0, abs=0)
            assert "shards" in server.stats()

    def test_pool_failure_descends_with_provenance(self, catalog):
        from repro.serve import ShardPool

        with ShardPool(catalog, 1, max_restarts=0, cooldown_s=0.001) as pool:
            server = EstimationServer(catalog, shard_pool=pool)
            pool.chaos_kill(0)
            response = serve_one(server, ServeRequest("roads", "rivers", level=6))
            # restart budget 0: the pool is down, the ladder answers.
            assert response.provenance.rung == "cached-coarse"
            assert "ShardUnavailableError" in response.provenance.reason
            assert response.degraded
