"""Shard pool supervision: placement, health, restarts, breakers."""

import time

import pytest

from repro.errors import EstimatorUnavailable, ShardUnavailableError
from repro.histograms import GHHistogram
from repro.serve import CircuitBreaker, ShardPool
from tests.serve.conftest import FakeClock


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_trial_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # the one half-open trial
        assert not breaker.allow()  # no second trial while it is in flight
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_cooldown_escalates_and_is_bounded(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_s=1.0, max_cooldown_s=3.0, clock=clock
        )
        breaker.record_failure()  # open #1: cooldown 1s
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # open #2: cooldown 2s
        clock.advance(1.0)
        assert not breaker.allow()  # 1s is no longer enough
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # open #3: cooldown 4s -> capped at 3s
        clock.advance(3.0)
        assert breaker.allow()
        assert breaker.opens_total == 3

    def test_success_resets_failure_count_and_escalation(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # the count restarted

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=1.0, max_cooldown_s=0.5)


@pytest.fixture(scope="module")
def pool(catalog):
    with ShardPool(catalog, 2, cooldown_s=0.01, call_timeout_s=30.0) as p:
        yield p


class TestPlacementAndHealth:
    def test_placement_is_deterministic_round_robin(self, pool, catalog):
        # sorted names: parks, rivers, roads -> shards 0, 1, 0
        assert pool.shard_for("parks") == 0
        assert pool.shard_for("rivers") == 1
        assert pool.shard_for("roads") == 0

    def test_unknown_dataset_rejected(self, pool):
        with pytest.raises(KeyError):
            pool.shard_for("oceans")

    def test_ping_round_trips_every_shard(self, pool):
        assert pool.ping(0)
        assert pool.ping(1)

    def test_stats_shape(self, pool):
        snap = pool.stats()
        assert snap["num_shards"] == 2
        assert len(snap["shards"]) == 2
        assert all("breaker" in s for s in snap["shards"])


class TestEstimation:
    def test_matches_local_build_exactly(self, pool, catalog):
        ds1, ds2 = catalog["roads"], catalog["rivers"]
        expected = GHHistogram.build(ds1, 5).estimate_selectivity(
            GHHistogram.build(ds2, 5)
        )
        assert pool.estimate("roads", "rivers", "gh", 5) == pytest.approx(
            expected, rel=0, abs=0
        )

    def test_cross_shard_pair_consults_both_owners(self, pool):
        before = pool.stats()
        pool.estimate("roads", "rivers", "gh", 4)  # shards 0 and 1
        after = pool.stats()
        for shard_id in (0, 1):
            assert (
                after["shards"][shard_id]["calls"]
                > before["shards"][shard_id]["calls"]
            )

    def test_concurrent_callers_never_swap_replies(self, pool, catalog):
        # Regression: without the per-shard lock, threads interleaved
        # send/poll/recv on one pipe and could receive each other's
        # replies (a silently wrong histogram) or tear the stream.  The
        # server really does call the pool from executor threads.
        from concurrent.futures import ThreadPoolExecutor

        levels = [3, 4, 5, 6]
        expected = {
            level: GHHistogram.build(catalog["roads"], level).estimate_selectivity(
                GHHistogram.build(catalog["rivers"], level)
            )
            for level in levels
        }
        with ThreadPoolExecutor(max_workers=4) as executor:
            futures = [
                executor.submit(pool.estimate, "roads", "rivers", "gh", level)
                for level in levels * 4
            ]
            results = [f.result(timeout=60.0) for f in futures]
        for level, value in zip(levels * 4, results):
            assert value == pytest.approx(expected[level], rel=0, abs=0)

    def test_logical_error_reported_without_tripping_the_breaker(self, pool):
        with pytest.raises(EstimatorUnavailable, match="KeyError"):
            pool.prepare("roads", scheme="nope")
        assert pool.ping(0)  # the worker survived
        assert pool.stats()["shards"][0]["breaker"]["state"] == "closed"

    def test_deadline_expires_inside_the_worker(self, pool):
        with pytest.raises(EstimatorUnavailable, match="EstimationTimeout"):
            pool.prepare("roads", budget_s=0.0)
        assert pool.ping(0)

    def test_estimate_budget_covers_both_prepares(self, pool, monkeypatch):
        # Regression: budget_s was shipped verbatim to both prepares, so
        # a request with t seconds left could burn ~2t of worker time.
        seen = []
        original = pool.prepare

        def recording(name, scheme="gh", level=7, *, extent=None, budget_s=None):
            seen.append(budget_s)
            return original(name, scheme, level, extent=extent, budget_s=budget_s)

        monkeypatch.setattr(pool, "prepare", recording)
        pool.estimate("roads", "rivers", "gh", 4, budget_s=30.0)
        first, second = seen
        assert first <= 30.0
        assert second < first  # only what the first prepare left over


class TestSupervision:
    def test_killed_worker_restarts_transparently(self, catalog):
        with ShardPool(catalog, 2, cooldown_s=0.005) as pool:
            first = pool.estimate("roads", "rivers", "gh", 4)
            assert pool.chaos_kill(0)
            # The next call finds the corpse, restarts, and answers the
            # same value from the re-attached shared-memory catalog.
            assert pool.estimate("roads", "rivers", "gh", 4) == first
            assert pool.stats()["restarts"] == 1

    def test_restart_budget_exhaustion_fails_the_shard(self, catalog):
        def always_crash():
            import os

            class Hook:
                def on_checkpoint(self, stage):
                    os._exit(17)  # simulate a hard worker crash mid-build

                def on_mutate(self, stage, value):
                    return value

            return Hook()

        with ShardPool(
            catalog,
            1,
            max_restarts=2,
            failure_threshold=50,  # keep the breaker out of this test
            cooldown_s=0.001,
            worker_hook_factory=always_crash,
        ) as pool:
            for _ in range(3):  # initial worker + 2 restarts, all crash
                with pytest.raises(ShardUnavailableError) as exc_info:
                    pool.prepare("roads", level=3)
                assert exc_info.value.state == "dead"
            with pytest.raises(ShardUnavailableError) as exc_info:
                pool.prepare("roads", level=3)
            assert exc_info.value.state == "failed"
            assert not pool.ping(0)
            snap = pool.stats()
            assert snap["restarts"] == 2
            assert snap["shards"][0]["failed"]

    def test_breaker_opens_under_crash_loop_then_recovers(self, catalog):
        from multiprocessing import Value

        crashes = Value("i", 0)

        def crash_twice_then_heal():
            import os

            class Hook:
                def on_checkpoint(self, stage):
                    # No get_lock(): dying while holding the shared lock
                    # would deadlock the replacement worker.  Only one
                    # worker exists at a time, so the bare read is safe.
                    if crashes.value < 2:
                        crashes.value += 1
                        os._exit(17)

                def on_mutate(self, stage, value):
                    return value

            return Hook()

        with ShardPool(
            catalog,
            1,
            max_restarts=10,
            failure_threshold=1,  # open on the first crash
            cooldown_s=0.02,
            worker_hook_factory=crash_twice_then_heal,
        ) as pool:
            with pytest.raises(ShardUnavailableError) as exc_info:
                pool.prepare("roads", level=3)
            assert exc_info.value.state == "dead"
            # Breaker is open: fail fast, no restart attempted.
            with pytest.raises(ShardUnavailableError) as exc_info:
                pool.prepare("roads", level=3)
            assert exc_info.value.state == "open"
            time.sleep(0.03)  # past the cooldown: half-open trial
            with pytest.raises(ShardUnavailableError):
                pool.prepare("roads", level=3)  # second crash, reopens
            time.sleep(0.05)  # past the doubled cooldown
            hist = pool.prepare("roads", level=3)  # healed worker answers
            assert hist.count == len(catalog["roads"])
            snap = pool.stats()
            assert snap["breaker_opens"] >= 2
            assert snap["shards"][0]["breaker"]["state"] == "closed"


class TestLifecycle:
    def test_closed_pool_rejects_calls(self, catalog):
        pool = ShardPool(catalog, 1)
        pool.start()
        pool.close()
        with pytest.raises(EstimatorUnavailable):
            pool.prepare("roads")
        pool.close()  # idempotent

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            ShardPool({}, 1)

    def test_shard_count_clamped_to_catalog_size(self, catalog):
        pool = ShardPool(catalog, 16)
        assert pool.num_shards == 3
