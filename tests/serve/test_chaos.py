"""Deterministic chaos tests for the serving front door.

The acceptance bar (ISSUE 6): under injected faults — shard workers
killed mid-batch, deadline storms, poison queries — the server must
**never hang**, **never return a wrong-but-confident answer** (every
degraded answer says so in its provenance), and must **recover within a
bounded number of requests** once the faults stop.

All tests run under ``pytest -m chaos`` in CI.  Faults are injected
through explicit hooks (worker hook factories, broken batch runners,
zero deadlines), never through timing races, so every run reproduces.
"""

import asyncio
from multiprocessing import Value

import pytest

from repro.errors import ServiceOverloadError
from repro.histograms import GHHistogram
from repro.serve import (
    DegradePolicy,
    EstimationServer,
    ServeRequest,
    ServerConfig,
    ShardPool,
)

pytestmark = pytest.mark.chaos

#: Every chaos scenario must finish well inside this bound (no-hang bar).
SCENARIO_TIMEOUT_S = 60.0


def run_bounded(coro):
    """Run a scenario with a hard timeout: a hang fails, never blocks CI."""

    async def bounded():
        return await asyncio.wait_for(coro, timeout=SCENARIO_TIMEOUT_S)

    return asyncio.run(bounded())


def crash_n_builds_factory(n):
    """A worker hook that hard-kills the worker for the first ``n`` builds
    (counted across restarts via shared memory), then heals."""
    crashes = Value("i", 0)

    def factory():
        import os

        class Hook:
            def on_checkpoint(self, stage):
                # No get_lock(): dying while holding the shared lock would
                # deadlock the replacement worker; one worker per shard
                # makes the bare read safe.
                if crashes.value < n:
                    crashes.value += 1
                    os._exit(17)

            def on_mutate(self, stage, value):
                return value

        return Hook()

    return factory


class TestShardKillsMidBatch:
    def test_crash_storm_degrades_then_recovers(self, catalog):
        """Workers die mid-build; answers degrade with honest provenance;
        once the crashes stop, full-quality service resumes."""
        pool = ShardPool(
            catalog,
            1,
            max_restarts=10,
            failure_threshold=3,
            cooldown_s=0.01,
            worker_hook_factory=crash_n_builds_factory(2),
        )
        with pool:
            server = EstimationServer(catalog, shard_pool=pool)

            async def scenario():
                async with server:
                    degraded, recovered = [], None
                    for attempt in range(10):
                        response = await server.submit(
                            ServeRequest("roads", "rivers", level=5)
                        )
                        if response.provenance.rung == "full":
                            recovered = (attempt, response)
                            break
                        degraded.append(response)
                    return degraded, recovered

            degraded, recovered = run_bounded(scenario())
        # While crashing, every answer admitted to being degraded.
        assert degraded, "the first requests must hit the crashing worker"
        for response in degraded:
            assert response.degraded
            assert "ShardUnavailableError" in response.provenance.reason
            assert response.provenance.rung in ("cached-coarse", "parametric")
        # Bounded recovery: full quality within the 10-request budget,
        # and the recovered answer is bit-identical to a local build.
        assert recovered is not None, "service never recovered full quality"
        expected = GHHistogram.build(catalog["roads"], 5).estimate_selectivity(
            GHHistogram.build(catalog["rivers"], 5)
        )
        assert recovered[1].selectivity == expected
        assert pool.stats()["restarts"] >= 1

    def test_breaker_limits_restart_churn(self, catalog):
        """A crash-looping worker must not be restarted on every request:
        the breaker fails fast between restart attempts."""
        pool = ShardPool(
            catalog,
            1,
            max_restarts=10,
            failure_threshold=1,
            cooldown_s=30.0,  # long cooldown: everything after the first
            max_cooldown_s=120.0,
            worker_hook_factory=crash_n_builds_factory(99),
        )
        with pool:
            server = EstimationServer(catalog, shard_pool=pool)

            async def scenario():
                async with server:
                    responses = []
                    for _ in range(8):
                        responses.append(
                            await server.submit(ServeRequest("roads", "rivers"))
                        )
                    return responses

            responses = run_bounded(scenario())
            # All eight answered (degraded), but at most two restarts were
            # attempted: the initial crash plus maybe one half-open trial.
            assert all(r.degraded for r in responses)
            assert pool.stats()["restarts"] <= 2
            assert pool.stats()["breaker_opens"] >= 1


class TestDeadlineStorm:
    def test_zero_budget_storm_answers_fast_and_honestly(self, catalog):
        """A burst of already-expired deadlines: every request resolves
        (parametric floor or typed error) without touching slow paths."""
        server = EstimationServer(catalog, ServerConfig(max_depth=64))

        async def scenario():
            async with server:
                return await asyncio.gather(
                    *[
                        server.submit(
                            ServeRequest("roads", "rivers", timeout_s=0.0)
                        )
                        for _ in range(32)
                    ],
                    return_exceptions=True,
                )

        outcomes = run_bounded(scenario())
        assert len(outcomes) == 32
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                assert isinstance(outcome, ServiceOverloadError)
            else:
                assert outcome.provenance.rung == "parametric"
                assert outcome.degraded
                assert "EstimationTimeout" in outcome.provenance.reason

    def test_storm_does_not_poison_later_requests(self, catalog):
        server = EstimationServer(catalog)

        async def scenario():
            async with server:
                await asyncio.gather(
                    *[
                        server.submit(ServeRequest("roads", "parks", timeout_s=0.0))
                        for _ in range(16)
                    ],
                    return_exceptions=True,
                )
                return await server.submit(ServeRequest("roads", "parks", level=5))

        response = run_bounded(scenario())
        assert response.provenance.rung == "full"
        assert not response.degraded


class TestPoisonQueries:
    def test_poison_batchmate_does_not_contaminate_answers(self, catalog):
        """One query whose runner call always fails shares a batch with
        healthy queries: the healthy ones answer correctly, the poison
        one raises, nobody gets a wrong value."""
        calls = {"batch": 0}

        def poison_runner(queries, deadline_s):
            calls["batch"] += 1
            if any(q.level == 13 for q in queries):
                raise ValueError("cursed histogram level")
            from repro.perf.batch import estimate_many

            return estimate_many(queries)

        server = EstimationServer(
            catalog,
            ServerConfig(
                max_delay_s=0.02,
                policy=DegradePolicy(
                    cached_at=0.97, parametric_at=0.98, shed_at=0.99
                ),
            ),
            batch_runner=poison_runner,
        )

        async def scenario():
            async with server:
                return await asyncio.gather(
                    server.submit(ServeRequest("roads", "rivers", level=5)),
                    server.submit(ServeRequest("roads", "rivers", level=13)),
                    server.submit(ServeRequest("roads", "parks", level=5)),
                    return_exceptions=True,
                )

        good1, poisoned, good2 = run_bounded(scenario())
        expected = GHHistogram.build(catalog["roads"], 5).estimate_selectivity(
            GHHistogram.build(catalog["rivers"], 5)
        )
        assert good1.selectivity == expected
        assert good2.provenance.rung in ("full", "cached-coarse", "parametric")
        # The poison query descended the ladder and still answered —
        # degraded, with the original failure named in its provenance.
        assert poisoned.degraded
        assert "ValueError" in poisoned.provenance.reason
        assert server.batcher.stats.batch_failures >= 1

    def test_mismatched_extent_pair_fails_itself_only(self, rng, catalog):
        """A structurally invalid pair (different extents) is a client
        error: it raises for that request and leaves the server healthy."""
        from repro.datasets import SpatialDataset
        from repro.geometry import Rect
        from tests.conftest import random_rects

        bad_extent = Rect(0.0, 0.0, 2.0, 2.0)
        weird = SpatialDataset(
            "weird", random_rects(rng, 50, extent=bad_extent), bad_extent
        )
        full_catalog = dict(catalog)
        full_catalog["weird"] = weird
        server = EstimationServer(full_catalog, ServerConfig(max_delay_s=0.01))

        async def scenario():
            async with server:
                return await asyncio.gather(
                    server.submit(ServeRequest("roads", "weird")),
                    server.submit(ServeRequest("roads", "rivers", level=5)),
                    return_exceptions=True,
                )

        bad, good = run_bounded(scenario())
        assert isinstance(bad, ValueError)  # extent mismatch surfaces typed
        assert not isinstance(good, BaseException)
        assert good.selectivity >= 0.0
        assert server.admission.depth == 0  # no leaked queue slots


class TestNoWrongButConfident:
    def test_every_non_full_answer_is_marked_degraded(self, catalog):
        """Property over a mixed fault scenario: any response whose rung
        is not ``full`` (or whose path saw a failure) carries
        ``degraded=True`` — the invariant monitoring relies on."""
        def broken_for_level_nine(queries, deadline_s):
            # Fails in both the fused batch AND the solo retry, so the
            # failure genuinely reaches the ladder (a transient flake
            # would be absorbed by the batcher's poison isolation).
            if any(q.level == 9 for q in queries):
                raise OSError("level-9 tier down")
            from repro.perf.batch import estimate_many

            return estimate_many(queries)

        server = EstimationServer(
            catalog,
            ServerConfig(max_delay_s=0.001),
            batch_runner=broken_for_level_nine,
        )

        async def scenario():
            async with server:
                out = []
                for i in range(8):
                    out.append(
                        await server.submit(
                            ServeRequest("roads", "rivers", level=9 if i % 2 else 5)
                        )
                    )
                return out

        responses = run_bounded(scenario())
        for response in responses:
            if response.provenance.rung != "full":
                assert response.degraded
            if response.provenance.reason:
                assert response.degraded
        # Both sides of the flake pattern occurred.
        rungs = {r.provenance.rung for r in responses}
        assert "full" in rungs and len(rungs) > 1
