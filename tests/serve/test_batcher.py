"""Micro-batcher: coalescing, ordering, poison isolation, deadlines.

No ``pytest-asyncio`` in the environment, so each test drives its own
event loop with ``asyncio.run``.
"""

import asyncio

import pytest

from repro.errors import EstimationTimeout, EstimatorUnavailable
from repro.perf.batch import BatchQuery
from repro.runtime import Deadline
from repro.serve import MicroBatcher


def _query(catalog, a="roads", b="rivers", level=5):
    return BatchQuery(catalog[a], catalog[b], "gh", level)


class RecordingRunner:
    """A synchronous runner that logs every batch it executes."""

    def __init__(self, fail_levels=()):
        self.batches = []
        self.fail_levels = set(fail_levels)

    def __call__(self, queries, deadline_s):
        self.batches.append((tuple(q.level for q in queries), deadline_s))
        for q in queries:
            if q.level in self.fail_levels:
                raise ValueError(f"poison level {q.level}")
        return [float(q.level) for q in queries]


class TestCoalescing:
    def test_concurrent_submissions_share_one_batch(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=16, max_delay_s=0.01)

        async def go():
            results = await asyncio.gather(
                *[batcher.submit(_query(catalog, level=i)) for i in range(5)]
            )
            await batcher.aclose()
            return results

        results = asyncio.run(go())
        assert results == [0.0, 1.0, 2.0, 3.0, 4.0]  # order preserved
        assert len(runner.batches) == 1
        assert batcher.stats.coalesced == 4

    def test_size_trigger_flushes_without_waiting(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=2, max_delay_s=60.0)

        async def go():
            results = await asyncio.gather(
                batcher.submit(_query(catalog, level=1)),
                batcher.submit(_query(catalog, level=2)),
            )
            await batcher.aclose()
            return results

        assert asyncio.run(go()) == [1.0, 2.0]  # a 60s window would hang
        assert len(runner.batches) == 1

    def test_sequential_submissions_each_complete(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=4, max_delay_s=0.001)

        async def go():
            first = await batcher.submit(_query(catalog, level=1))
            second = await batcher.submit(_query(catalog, level=2))
            await batcher.aclose()
            return first, second

        assert asyncio.run(go()) == (1.0, 2.0)
        assert batcher.stats.queries == 2


class TestPoisonIsolation:
    def test_poison_query_fails_only_itself(self, catalog):
        runner = RecordingRunner(fail_levels={3})
        batcher = MicroBatcher(runner, max_batch=16, max_delay_s=0.01)

        async def go():
            results = await asyncio.gather(
                *[batcher.submit(_query(catalog, level=i)) for i in (1, 2, 3, 4)],
                return_exceptions=True,
            )
            await batcher.aclose()
            return results

        results = asyncio.run(go())
        assert results[0] == 1.0 and results[1] == 2.0 and results[3] == 4.0
        assert isinstance(results[2], ValueError)
        assert batcher.stats.batch_failures == 1
        assert batcher.stats.solo_retries == 4  # every member re-ran alone

    def test_short_result_list_never_hangs_the_batch(self, catalog):
        # Regression: a runner returning fewer results than queries left
        # the unpaired members' futures unresolved forever.  A count
        # mismatch must instead fall to the solo-retry path, where every
        # member settles one way or the other.
        def short_runner(queries, deadline_s):
            if len(queries) > 1:
                return [float(q.level) for q in queries[:-1]]  # one short
            return [float(q.level) for q in queries]

        batcher = MicroBatcher(short_runner, max_batch=16, max_delay_s=0.01)

        async def go():
            results = await asyncio.gather(
                *[batcher.submit(_query(catalog, level=i)) for i in (1, 2, 3)]
            )
            await batcher.aclose()
            return results

        assert asyncio.run(go()) == [1.0, 2.0, 3.0]
        assert batcher.stats.batch_failures == 1
        assert batcher.stats.solo_retries == 3

    def test_wrong_solo_cardinality_raises_instead_of_hanging(self, catalog):
        def empty_runner(queries, deadline_s):
            return []

        batcher = MicroBatcher(empty_runner, max_batch=16, max_delay_s=0.001)

        async def go():
            with pytest.raises(EstimatorUnavailable, match="0 results"):
                await batcher.submit(_query(catalog))
            await batcher.aclose()

        asyncio.run(go())

    def test_clean_batch_has_no_retries(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=16, max_delay_s=0.01)

        async def go():
            await asyncio.gather(
                *[batcher.submit(_query(catalog, level=i)) for i in (1, 2)]
            )
            await batcher.aclose()

        asyncio.run(go())
        assert batcher.stats.batch_failures == 0
        assert batcher.stats.solo_retries == 0


class TestDeadlines:
    def test_expired_deadline_fast_fails_before_the_runner(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=16, max_delay_s=0.01)

        async def go():
            with pytest.raises(EstimationTimeout):
                await batcher.submit(_query(catalog), Deadline(0.0))
            await batcher.aclose()

        asyncio.run(go())
        assert runner.batches == []  # never reached the runner
        assert batcher.stats.expired_before_run == 1

    def test_batch_runs_under_tightest_member_budget(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=16, max_delay_s=0.01)

        async def go():
            await asyncio.gather(
                batcher.submit(_query(catalog, level=1), Deadline(30.0)),
                batcher.submit(_query(catalog, level=2), Deadline(5.0)),
                batcher.submit(_query(catalog, level=3)),  # unbudgeted
            )
            await batcher.aclose()

        asyncio.run(go())
        (_, deadline_s), = runner.batches
        assert deadline_s is not None and deadline_s <= 5.0

    def test_unbudgeted_batch_passes_none(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=16, max_delay_s=0.001)

        async def go():
            await batcher.submit(_query(catalog))
            await batcher.aclose()

        asyncio.run(go())
        assert runner.batches[0][1] is None


class TestLifecycle:
    def test_closed_batcher_rejects_submissions(self, catalog):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner)

        async def go():
            await batcher.aclose()
            with pytest.raises(EstimatorUnavailable):
                await batcher.submit(_query(catalog))

        asyncio.run(go())

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(RecordingRunner(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(RecordingRunner(), max_delay_s=-1.0)
