"""The degradation ladder: pressure thresholds and failure descent."""

import pytest

from repro.serve import DegradationLadder, DegradePolicy, ServeProvenance, ServiceRung


class TestPolicy:
    def test_defaults_are_ordered(self):
        policy = DegradePolicy()
        assert 0 < policy.cached_at <= policy.parametric_at <= policy.shed_at

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cached_at": 0.0},
            {"cached_at": 0.8, "parametric_at": 0.7},
            {"parametric_at": 0.99, "shed_at": 0.98},
            {"coarsen_by": 0},
        ],
    )
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DegradePolicy(**kwargs)


class TestSelection:
    def test_thresholds_are_inclusive(self):
        ladder = DegradationLadder(
            DegradePolicy(cached_at=0.5, parametric_at=0.75, shed_at=0.95)
        )
        assert ladder.select(0.0) is ServiceRung.FULL
        assert ladder.select(0.49) is ServiceRung.FULL
        assert ladder.select(0.50) is ServiceRung.CACHED
        assert ladder.select(0.74) is ServiceRung.CACHED
        assert ladder.select(0.75) is ServiceRung.PARAMETRIC
        assert ladder.select(0.95) is ServiceRung.SHED
        assert ladder.select(1.0) is ServiceRung.SHED


class TestDescent:
    def test_descent_order_and_floor(self):
        assert DegradationLadder.next_below(ServiceRung.FULL) is ServiceRung.CACHED
        assert DegradationLadder.next_below(ServiceRung.CACHED) is ServiceRung.PARAMETRIC
        assert DegradationLadder.next_below(ServiceRung.PARAMETRIC) is None

    def test_descent_never_sheds(self):
        rung = ServiceRung.FULL
        seen = []
        while rung is not None:
            seen.append(rung)
            rung = DegradationLadder.next_below(rung)
        assert ServiceRung.SHED not in seen


class TestAccounting:
    def test_record_and_snapshot(self):
        ladder = DegradationLadder()
        ladder.record(ServiceRung.FULL)
        ladder.record(ServiceRung.FULL)
        ladder.record(ServiceRung.SHED)
        assert ladder.snapshot() == {
            "full": 2, "cached-coarse": 0, "parametric": 0, "shed": 1,
        }


class TestProvenance:
    def test_provenance_is_frozen(self):
        prov = ServeProvenance(
            rung="full", requested="gh(level=7)", degraded=False, pressure=0.1
        )
        with pytest.raises(AttributeError):
            prov.rung = "shed"
