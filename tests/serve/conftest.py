"""Shared fixtures for the serving front-door tests.

A small deterministic catalog keeps every test fast; anything that
needs scale builds its own datasets.
"""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.geometry import Rect
from tests.conftest import random_rects


@pytest.fixture(scope="module")
def catalog():
    """Three small datasets on the unit extent (module-scoped: read-only)."""
    rng = np.random.default_rng(20260808)
    return {
        name: SpatialDataset(name, random_rects(rng, 300), Rect.unit())
        for name in ("roads", "rivers", "parks")
    }


class FakeClock:
    """A manually advanced monotonic clock for deterministic tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds
