"""The serve fast lane: tier-0 memo hits answered on the event loop."""

import asyncio

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.errors import ServiceOverloadError
from repro.geometry import Rect
from repro.serve import EstimationServer, ServeRequest, ServerConfig
from repro.serve.shards import ShardPool
from tests.conftest import random_rects
from tests.serve.conftest import FakeClock


def serve_many(server, requests):
    async def go():
        async with server:
            results = []
            for request in requests:
                results.append(await server.submit(request))
            return results

    return asyncio.run(go())


def fresh_catalog(seed=7, n=300):
    rng = np.random.default_rng(seed)
    return {
        name: SpatialDataset(name, random_rects(rng, n), Rect.unit())
        for name in ("roads", "rivers", "parks")
    }


class TestFastLane:
    def test_warm_repeat_served_via_memo(self, catalog):
        server = EstimationServer(catalog)
        request = ServeRequest("roads", "rivers", level=5)
        cold, warm = serve_many(server, [request, request])
        assert cold.provenance.via == "batch"
        assert warm.provenance.via == "memo"
        assert warm.provenance.rung == "full"
        assert not warm.degraded
        assert warm.selectivity == cold.selectivity  # bit-identical replay
        assert server.stats()["memo"]["fast_hits"] == 1

    def test_memo_hits_counted_in_ladder_and_stats(self, catalog):
        server = EstimationServer(catalog)
        request = ServeRequest("roads", "parks", level=4)
        serve_many(server, [request] * 4)
        stats = server.stats()
        assert stats["memo"]["fast_hits"] == 3
        assert stats["memo"]["entries"] >= 1
        assert stats["rungs"]["full"] == 4  # memo answers count as full-rung

    def test_distinct_requests_do_not_cross_talk(self, catalog):
        """(scheme, level) are part of the memo key: repeating three
        different questions warms three different entries, each
        replaying its own answer."""
        server = EstimationServer(catalog)
        requests = [
            ServeRequest("roads", "rivers", level=5),
            ServeRequest("roads", "rivers", level=4),
            ServeRequest("roads", "rivers", scheme="ph", level=5),
        ]
        responses = serve_many(server, requests + requests)
        cold, warm = responses[:3], responses[3:]
        assert [r.provenance.via for r in warm] == ["memo"] * 3
        assert [r.selectivity for r in warm] == [r.selectivity for r in cold]
        assert len({r.selectivity for r in cold}) == 3

    def test_mutation_invalidates_fast_lane(self):
        """A sanctioned mutation bumps the token; the next request takes
        the slow path and re-estimates against the new geometry."""
        catalog = fresh_catalog()
        server = EstimationServer(catalog)
        request = ServeRequest("roads", "rivers", level=5)

        async def go():
            async with server:
                cold = await server.submit(request)
                warm = await server.submit(request)
                roads = catalog["roads"]
                keep = len(roads) // 3
                roads.rects.xmin[keep:] = roads.rects.xmin[:1]
                roads.rects.xmax[keep:] = roads.rects.xmax[:1]
                roads.rects.ymin[keep:] = roads.rects.ymin[:1]
                roads.rects.ymax[keep:] = roads.rects.ymax[:1]
                roads.mark_mutated()
                after = await server.submit(request)
                return cold, warm, after

        cold, warm, after = asyncio.run(go())
        assert warm.provenance.via == "memo"
        assert after.provenance.via == "batch"  # fast lane declined
        assert after.selectivity != cold.selectivity

    def test_unknown_dataset_still_client_error(self, catalog):
        server = EstimationServer(catalog)
        with pytest.raises(ValueError, match="unknown dataset"):
            serve_many(server, [ServeRequest("roads", "nowhere")])

    def test_quota_charged_on_fast_lane(self, catalog):
        """Memo hits skip the queue but still bill the tenant bucket —
        the rate contract covers every answered request."""
        server = EstimationServer(
            catalog, ServerConfig(tenant_rate=0.001, tenant_burst=2.0)
        )
        clock = FakeClock()
        server.admission._clock = clock

        async def go():
            async with server:
                request = ServeRequest("roads", "rivers", level=4, tenant="t1")
                first = await server.submit(request)  # slow path, token 1
                second = await server.submit(request)  # fast lane, token 2
                with pytest.raises(ServiceOverloadError) as excinfo:
                    await server.submit(request)  # fast lane, bucket dry
                return first, second, excinfo.value

        first, second, error = asyncio.run(go())
        assert second.provenance.via == "memo"
        assert error.reason == "quota"
        assert server.admission.stats.rejected_quota == 1
        assert server.stats()["rungs"]["shed"] == 1

    def test_fast_lane_skips_queue_capacity(self, catalog):
        """A warm memo answers even when the bounded queue is saturated:
        depth-occupying slots guard executor capacity the fast lane
        never uses."""
        server = EstimationServer(catalog, ServerConfig(max_depth=1))
        request = ServeRequest("roads", "rivers", level=4)

        async def go():
            async with server:
                await server.submit(request)  # warm the memo
                server.admission._depth = 1  # saturate the queue by hand
                try:
                    return await server.submit(request)
                finally:
                    server.admission._depth = 0

        response = asyncio.run(go())
        assert response.provenance.via == "memo"


class TestShardPathMemo:
    def test_shard_answers_populate_memo(self, catalog):
        with ShardPool(catalog, 2) as pool:
            server = EstimationServer(catalog, shard_pool=pool)
            request = ServeRequest("roads", "rivers", level=5)
            cold, warm = serve_many(server, [request, request])
        assert cold.provenance.via == "shards"
        assert warm.provenance.via == "memo"
        assert warm.selectivity == cold.selectivity
