"""Admission control: bounded queue, tenant quotas, typed rejections."""

import pytest

from repro.errors import ServiceOverloadError
from repro.serve import AdmissionController, TokenBucket
from tests.serve.conftest import FakeClock


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire(), bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available == 3.0

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1, 1), (1, 0), (1, 0.5)])
    def test_bad_parameters_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate, burst)


class TestBoundedQueue:
    def test_over_capacity_rejects_immediately(self):
        ctl = AdmissionController(max_depth=2)
        ctl.admit(), ctl.admit()
        with pytest.raises(ServiceOverloadError) as exc_info:
            ctl.admit()
        assert exc_info.value.reason == "queue-full"
        assert exc_info.value.queue_depth == 2
        assert ctl.stats.rejected_queue == 1

    def test_release_frees_the_slot(self):
        ctl = AdmissionController(max_depth=1)
        ticket = ctl.admit()
        ctl.release(ticket)
        ctl.admit()  # does not raise
        assert ctl.depth == 1

    def test_release_is_idempotent(self):
        ctl = AdmissionController(max_depth=4)
        ticket = ctl.admit()
        ctl.release(ticket)
        ctl.release(ticket)
        assert ctl.depth == 0
        assert ctl.stats.released == 1

    def test_pressure_tracks_occupancy(self):
        ctl = AdmissionController(max_depth=4)
        assert ctl.pressure == 0.0
        tickets = [ctl.admit() for _ in range(3)]
        assert ctl.pressure == pytest.approx(0.75)
        assert ctl.stats.high_water == 3
        for t in tickets:
            ctl.release(t)
        assert ctl.pressure == 0.0
        assert ctl.stats.high_water == 3  # high water is monotone

    def test_pressure_ahead_excludes_own_slot(self):
        ctl = AdmissionController(max_depth=4)
        tickets = [ctl.admit() for _ in range(3)]
        assert ctl.pressure == pytest.approx(0.75)
        assert ctl.pressure_ahead == pytest.approx(0.5)  # two peers of four
        for t in tickets:
            ctl.release(t)
        assert ctl.pressure_ahead == 0.0

    def test_depth_one_admitted_request_sees_zero_pressure(self):
        # Regression: counting the request's own slot made max_depth=1
        # report pressure 1.0 for every admitted request.
        ctl = AdmissionController(max_depth=1)
        ctl.admit()
        assert ctl.pressure == 1.0
        assert ctl.pressure_ahead == 0.0

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_depth=0)


class TestTenantQuotas:
    def test_quota_rejection_before_queue(self):
        clock = FakeClock()
        ctl = AdmissionController(
            max_depth=100, tenant_rate=1.0, tenant_burst=2.0, clock=clock
        )
        ctl.admit("noisy"), ctl.admit("noisy")
        with pytest.raises(ServiceOverloadError) as exc_info:
            ctl.admit("noisy")
        assert exc_info.value.reason == "quota"
        assert exc_info.value.tenant == "noisy"
        assert ctl.stats.rejected_quota == 1

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        ctl = AdmissionController(
            max_depth=100, tenant_rate=1.0, tenant_burst=1.0, clock=clock
        )
        ctl.admit("noisy")
        with pytest.raises(ServiceOverloadError):
            ctl.admit("noisy")
        ctl.admit("quiet")  # a different tenant still gets in

    def test_quota_recovers_with_time(self):
        clock = FakeClock()
        ctl = AdmissionController(
            max_depth=100, tenant_rate=10.0, tenant_burst=1.0, clock=clock
        )
        ctl.admit("t")
        with pytest.raises(ServiceOverloadError):
            ctl.admit("t")
        clock.advance(0.11)  # one token refilled (with float headroom)
        ctl.admit("t")

    def test_no_quota_means_no_buckets(self):
        ctl = AdmissionController(max_depth=4)
        assert ctl.bucket_for("anyone") is None

    def test_bucket_table_is_bounded(self):
        # Regression: one bucket per distinct tenant string was an
        # unbounded-memory path in the never-buffer-without-bound layer.
        clock = FakeClock()
        ctl = AdmissionController(
            max_depth=1000, tenant_rate=1.0, tenant_burst=5.0,
            max_tenants=8, clock=clock,
        )
        for i in range(100):
            ctl.release(ctl.admit(f"tenant-{i}"))
        assert len(ctl._buckets) <= 8

    def test_eviction_prefers_idle_buckets_and_preserves_active_quota(self):
        clock = FakeClock()
        ctl = AdmissionController(
            max_depth=1000, tenant_rate=0.001, tenant_burst=2.0,
            max_tenants=2, clock=clock,
        )
        ctl.admit("draining"), ctl.admit("draining")  # bucket now empty
        ctl.bucket_for("idle")  # created full, never drained
        ctl.admit("newcomer")  # at cap: must evict the idle bucket
        assert "draining" in ctl._buckets  # the active bucket survived
        assert "idle" not in ctl._buckets
        with pytest.raises(ServiceOverloadError):
            ctl.admit("draining")  # its dry state was not forgotten

    def test_bad_max_tenants_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(max_depth=4, tenant_rate=1.0, max_tenants=0)

    def test_snapshot_shape(self):
        ctl = AdmissionController(max_depth=4)
        ctl.release(ctl.admit())
        snap = ctl.stats.snapshot()
        assert snap["admitted"] == 1
        assert snap["released"] == 1
        assert snap["rejected"] == 0
