"""Open-loop load generator and the BENCH_serve.json schema gate."""

import asyncio

import pytest

from repro.serve import (
    EstimationServer,
    ServeRequest,
    ServerConfig,
    run_load,
    validate_bench_report,
)


def _templates():
    return [
        ServeRequest("roads", "rivers", level=4),
        ServeRequest("roads", "parks", level=4),
    ]


class TestRunLoad:
    def test_open_loop_accounts_for_every_request(self, catalog):
        server = EstimationServer(catalog, ServerConfig(max_delay_s=0.001))

        async def go():
            async with server:
                return await run_load(
                    server, _templates(), rate_qps=100.0, duration_s=0.2
                )

        report = asyncio.run(go())
        assert report.sent == 20
        assert report.ok + report.shed + report.timeouts + report.errors == 20
        assert report.errors == 0
        assert report.ok > 0
        assert sum(report.rungs.values()) == report.ok

    def test_latency_percentiles_are_monotone(self, catalog):
        server = EstimationServer(catalog, ServerConfig(max_delay_s=0.001))

        async def go():
            async with server:
                return await run_load(
                    server, _templates(), rate_qps=100.0, duration_s=0.1
                )

        report = asyncio.run(go())
        p50, p95, p99 = (report.percentile_ms(q) for q in (50, 95, 99))
        assert 0.0 <= p50 <= p95 <= p99

    def test_overload_produces_typed_sheds_not_hangs(self, catalog):
        # A two-deep queue at 200 q/s with a disabled cache (1-byte
        # budget forces a fresh build per request): most requests must be
        # refused, and refusals are typed, immediate, counted by reason.
        server = EstimationServer(
            catalog, ServerConfig(max_depth=2, cache_bytes=1)
        )

        async def go():
            async with server:
                return await run_load(
                    server,
                    [ServeRequest("roads", "rivers", level=9)],
                    rate_qps=2000.0,
                    duration_s=0.1,
                )

        report = asyncio.run(go())
        assert report.shed > 0
        assert sum(report.shed_reasons.values()) == report.shed
        assert set(report.shed_reasons) <= {"queue-full", "shed", "quota"}

    def test_bad_parameters_rejected(self, catalog):
        server = EstimationServer(catalog)

        async def go():
            with pytest.raises(ValueError):
                await run_load(server, [], rate_qps=10, duration_s=0.1)
            with pytest.raises(ValueError):
                await run_load(server, _templates(), rate_qps=0, duration_s=0.1)
            await server.aclose()

        asyncio.run(go())

    def test_snapshot_is_a_valid_regime_entry(self, catalog):
        server = EstimationServer(catalog, ServerConfig(max_delay_s=0.001))

        async def go():
            async with server:
                return await run_load(
                    server, _templates(), rate_qps=50.0, duration_s=0.1
                )

        entry = asyncio.run(go()).snapshot()
        payload = {
            "bench": "serve",
            "regimes": {
                "healthy": entry,
                "overloaded": entry,
                "faulted": {**entry, "shards": {"restarts": 1, "breaker_opens": 1}},
            },
        }
        assert validate_bench_report(payload) == []


class TestSchemaGate:
    def _valid_entry(self):
        return {
            "offered_qps": 50.0,
            "achieved_qps": 48.0,
            "duration_s": 5.0,
            "sent": 250,
            "ok": 240,
            "shed": 10,
            "timeouts": 0,
            "errors": 0,
            "latency_ms": {"p50": 1.0, "p95": 2.0, "p99": 3.0},
            "rungs": {"full": 240},
        }

    def _valid_payload(self):
        return {
            "bench": "serve",
            "regimes": {
                "healthy": self._valid_entry(),
                "overloaded": self._valid_entry(),
                "faulted": {
                    **self._valid_entry(),
                    "shards": {"restarts": 2, "breaker_opens": 1},
                },
            },
        }

    def test_valid_payload_passes(self):
        assert validate_bench_report(self._valid_payload()) == []

    def test_missing_regime_flagged(self):
        payload = self._valid_payload()
        del payload["regimes"]["overloaded"]
        assert any("overloaded" in p for p in validate_bench_report(payload))

    def test_missing_counter_flagged(self):
        payload = self._valid_payload()
        del payload["regimes"]["healthy"]["shed"]
        assert any("healthy.shed" in p for p in validate_bench_report(payload))

    def test_inverted_percentiles_flagged(self):
        payload = self._valid_payload()
        payload["regimes"]["healthy"]["latency_ms"] = {
            "p50": 9.0, "p95": 2.0, "p99": 3.0,
        }
        assert any("p50 <= p95" in p for p in validate_bench_report(payload))

    def test_missing_shard_counters_flagged(self):
        payload = self._valid_payload()
        del payload["regimes"]["faulted"]["shards"]
        assert any("faulted.shards" in p for p in validate_bench_report(payload))

    def test_wrong_bench_name_flagged(self):
        payload = self._valid_payload()
        payload["bench"] = "serving"
        assert any("'serve'" in p for p in validate_bench_report(payload))

    def test_non_dict_report_flagged(self):
        assert validate_bench_report([1, 2, 3])
