"""Every engine answers the shared edge-case table identically.

The table (``edge_cases.py``) pins the closed boundary semantics; these
tests drive it through all four evaluation routes:

1. the predicate's dense ``pair_mask`` (the semantic ground truth);
2. the scalar geometry predicates (``rects_intersect`` /
   ``rects_within_distance`` / ``intervals_overlap``) where one exists;
3. the blocked naive oracle;
4. every specialized engine ``supported_join_methods`` reports.

A disagreement anywhere is a boundary-semantics bug, not an accuracy
issue — these are single-pair joins with one exactly-representable
answer.
"""

import numpy as np
import pytest

from repro.geometry import (
    Rect,
    RectArray,
    intervals_overlap,
    min_distance,
    rects_intersect,
    rects_within_distance,
)
from repro.predicates import (
    Intersects,
    IntervalOverlap,
    WithinDistance,
    naive_predicate_count,
    naive_predicate_pairs,
    predicate_join_count,
    predicate_join_pairs,
    supported_join_methods,
)

from tests.predicates.edge_cases import EDGE_CASES

_CASE_IDS = [case.label for case in EDGE_CASES]


def _as_array(coords) -> RectArray:
    x0, y0, x1, y1 = coords
    return RectArray(
        np.array([x0], dtype=np.float64),
        np.array([y0], dtype=np.float64),
        np.array([x1], dtype=np.float64),
        np.array([y1], dtype=np.float64),
    )


@pytest.mark.parametrize("case", EDGE_CASES, ids=_CASE_IDS)
def test_pair_mask_matches_table(case):
    mask = case.predicate.pair_mask(_as_array(case.a), _as_array(case.b))
    assert mask.shape == (1, 1)
    assert bool(mask[0, 0]) is case.expected


@pytest.mark.parametrize("case", EDGE_CASES, ids=_CASE_IDS)
def test_scalar_predicates_match_table(case):
    ra, rb = Rect(*case.a), Rect(*case.b)
    if isinstance(case.predicate, Intersects):
        assert rects_intersect(ra, rb) is case.expected
    elif isinstance(case.predicate, WithinDistance):
        assert rects_within_distance(ra, rb, case.predicate.eps) is case.expected
        # The scalar distance agrees with the decision on non-boundary
        # rows and sits exactly on ε for the pinned boundary rows.
        distance = min_distance(ra, rb)
        assert (distance <= case.predicate.eps) is case.expected
    elif isinstance(case.predicate, IntervalOverlap):
        if case.predicate.axis == "x":
            assert intervals_overlap(ra.xmin, ra.xmax, rb.xmin, rb.xmax) is case.expected
        else:
            assert intervals_overlap(ra.ymin, ra.ymax, rb.ymin, rb.ymax) is case.expected
    else:
        value_a = getattr(ra, case.predicate.endpoint)
        value_b = getattr(rb, case.predicate.endpoint)
        ops = {"lt": value_a < value_b, "le": value_a <= value_b,
               "gt": value_a > value_b, "ge": value_a >= value_b}
        assert ops[case.predicate.op] is case.expected


@pytest.mark.parametrize("case", EDGE_CASES, ids=_CASE_IDS)
def test_naive_oracle_matches_table(case):
    a, b = _as_array(case.a), _as_array(case.b)
    expected = int(case.expected)
    assert naive_predicate_count(a, b, case.predicate) == expected
    pairs = naive_predicate_pairs(a, b, case.predicate)
    assert len(pairs) == expected


@pytest.mark.parametrize("case", EDGE_CASES, ids=_CASE_IDS)
def test_every_engine_matches_table(case):
    a, b = _as_array(case.a), _as_array(case.b)
    expected = int(case.expected)
    for method in supported_join_methods(case.predicate):
        assert predicate_join_count(a, b, case.predicate, method=method) == expected, method
        pairs = predicate_join_pairs(a, b, case.predicate, method=method)
        assert len(pairs) == expected, method
        if expected:
            assert pairs.tolist() == [[0, 0]]
