"""Differential engine matrix: every predicate engine vs the naive oracle.

The accuracy gate for the exact layer: on seeded random inputs, every
engine in ``supported_join_methods(predicate)`` must reproduce the naive
oracle's *pair set* (``np.array_equal`` — the canonical ordering
contract makes that meaningful), for every standard predicate.  Plus the
algebraic identities that hold exactly: ε = 0 is bit-identical to the
intersects engines, ``lt``/``ge`` complement to the cross product, and
reversing arguments matches the reversed predicate.
"""

import numpy as np
import pytest

from repro.geometry import RectArray
from repro.join.naive import nested_loop_pairs
from repro.predicates import (
    STANDARD_PREDICATES,
    Inequality,
    Intersects,
    IntervalOverlap,
    WithinDistance,
    epsilon_join_pairs,
    inequality_join_count,
    interval_join_pairs,
    naive_predicate_count,
    naive_predicate_pairs,
    predicate_join_count,
    predicate_join_pairs,
    predicate_selectivity,
    supported_join_methods,
)

from tests.conftest import random_rects

pytestmark = pytest.mark.accuracy

_EMPTY = RectArray(
    np.empty(0), np.empty(0), np.empty(0), np.empty(0)
)


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(2206_07396)
    return random_rects(rng, 300), random_rects(rng, 400)


@pytest.fixture(scope="module")
def gridded_pair():
    """Coordinates snapped to a coarse grid — forces endpoint ties, the
    regime where searchsorted side=left/right bugs hide."""
    rng = np.random.default_rng(8)
    a, b = random_rects(rng, 250), random_rects(rng, 350)

    def snap(r):
        g = 16.0
        x0, y0 = np.floor(r.xmin * g) / g, np.floor(r.ymin * g) / g
        x1, y1 = np.ceil(r.xmax * g) / g, np.ceil(r.ymax * g) / g
        return RectArray(x0, y0, x1, y1)

    return snap(a), snap(b)


@pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
@pytest.mark.parametrize("fixture", ["pair", "gridded_pair"])
def test_every_engine_matches_naive_oracle(request, pred_name, fixture):
    a, b = request.getfixturevalue(fixture)
    predicate = STANDARD_PREDICATES[pred_name]
    expected_pairs = naive_predicate_pairs(a, b, predicate)
    expected_count = len(expected_pairs)
    assert naive_predicate_count(a, b, predicate) == expected_count
    for method in supported_join_methods(predicate) + ("auto",):
        assert predicate_join_count(a, b, predicate, method=method) == expected_count, method
        got = predicate_join_pairs(a, b, predicate, method=method)
        assert np.array_equal(got, expected_pairs), method


@pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
def test_blocked_oracle_is_blocking_invariant(pair, pred_name):
    """Block size must not change the oracle's answer (off-by-one sweep)."""
    a, b = pair
    predicate = STANDARD_PREDICATES[pred_name]
    reference = naive_predicate_pairs(a, b, predicate)
    for block in (1, 7, 64, 10_000):
        assert naive_predicate_count(a, b, predicate, block=block) == len(reference)
        assert np.array_equal(naive_predicate_pairs(a, b, predicate, block=block), reference)


@pytest.mark.parametrize("engine", ["flat", "sweep"])
def test_eps_zero_bit_identical_to_intersects(pair, engine):
    """The ISSUE acceptance bar: ε = 0 engines reproduce the existing
    intersects join bit for bit (same pair array, same dtype)."""
    a, b = pair
    expected = nested_loop_pairs(a, b)
    got = epsilon_join_pairs(a, b, 0.0, engine=engine)
    assert got.dtype == expected.dtype
    assert np.array_equal(got, expected)


def test_eps_monotone_and_saturating(pair):
    a, b = pair
    counts = [
        predicate_join_count(a, b, WithinDistance(eps))
        for eps in (0.0, 0.01, 0.05, 0.2, 2.0)
    ]
    assert counts == sorted(counts)
    # Unit-extent data: ε = 2 > the diagonal, so every pair qualifies.
    assert counts[-1] == len(a) * len(b)


def test_interval_join_is_projected_intersects(pair):
    """IntervalOverlap('x') must equal Intersects on y-flattened data."""
    a, b = pair
    flat_a = RectArray(a.xmin, np.zeros(len(a)), a.xmax, np.zeros(len(a)))
    flat_b = RectArray(b.xmin, np.zeros(len(b)), b.xmax, np.zeros(len(b)))
    expected = nested_loop_pairs(flat_a, flat_b)
    for engine in ("sweep", "flat", "nested"):
        assert np.array_equal(interval_join_pairs(a, b, "x", engine=engine), expected)


@pytest.mark.parametrize("endpoint", ["xmin", "ymax"])
def test_inequality_complement_identity(gridded_pair, endpoint):
    """count(lt) + count(ge) = |a|·|b| exactly, even with ties."""
    a, b = gridded_pair
    total = len(a) * len(b)
    for op in ("lt", "le"):
        predicate = Inequality(op, endpoint)
        assert (
            inequality_join_count(a, b, predicate)
            + inequality_join_count(a, b, predicate.complement())
            == total
        )


@pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
def test_reversed_arguments_identity(gridded_pair, pred_name):
    """pairs(a P b) with columns swapped = pairs(b P.reversed() a)."""
    a, b = gridded_pair
    predicate = STANDARD_PREDICATES[pred_name]
    forward = predicate_join_pairs(a, b, predicate)
    backward = predicate_join_pairs(b, a, predicate.reversed())
    swapped = forward[:, ::-1]
    order = np.lexsort((swapped[:, 1], swapped[:, 0]))
    assert np.array_equal(swapped[order], backward)


@pytest.mark.parametrize("pred_name", sorted(STANDARD_PREDICATES))
def test_empty_inputs(pair, pred_name):
    a, _ = pair
    predicate = STANDARD_PREDICATES[pred_name]
    for left, right in ((_EMPTY, a), (a, _EMPTY), (_EMPTY, _EMPTY)):
        assert predicate_join_count(left, right, predicate) == 0
        pairs = predicate_join_pairs(left, right, predicate)
        assert pairs.shape == (0, 2)
        assert pairs.dtype == np.int64
        assert predicate_selectivity(left, right, predicate) == 0.0


def test_selectivity_matches_count(pair):
    a, b = pair
    for predicate in STANDARD_PREDICATES.values():
        expected = predicate_join_count(a, b, predicate) / (len(a) * len(b))
        assert predicate_selectivity(a, b, predicate) == expected


def test_unsupported_method_rejected(pair):
    a, b = pair
    with pytest.raises(ValueError, match="not supported"):
        predicate_join_count(a, b, Inequality("lt", "xmin"), method="flat")
    with pytest.raises(ValueError, match="not supported"):
        predicate_join_pairs(a, b, Intersects(), method="partition")


def test_bad_engine_arguments(pair):
    a, b = pair
    with pytest.raises(ValueError, match="engine"):
        epsilon_join_pairs(a, b, 0.1, engine="nested")
    with pytest.raises(ValueError, match="engine"):
        interval_join_pairs(a, b, "x", engine="bogus")
    with pytest.raises(ValueError, match="block"):
        naive_predicate_count(a, b, Intersects(), block=0)


def test_supported_methods_shape():
    assert supported_join_methods(Intersects()) == ("naive", "sweep", "flat")
    assert supported_join_methods(WithinDistance(0.1)) == ("naive", "sweep", "flat")
    assert supported_join_methods(IntervalOverlap("y")) == ("naive", "sweep", "flat")
    assert supported_join_methods(Inequality("ge", "ymin")) == ("naive", "sweep")
