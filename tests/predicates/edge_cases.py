"""Table-driven boundary semantics shared by every predicate engine.

One row = one pair of rectangles, one predicate, one expected truth
value.  The table pins the *closed* boundary contract documented in
:mod:`repro.geometry.predicates` — touching rectangles intersect, a pair
at distance exactly ε is within ε, intervals sharing an endpoint
overlap, equal endpoints decide ``le``/``ge`` but not ``lt``/``gt`` —
and every consumer (scalar predicates, dense masks, the naive oracle,
the specialized engines) must agree with it row by row.

Coordinates are chosen to be exactly representable in binary floating
point (halves and small integers), so the expected answers are not
rounding accidents: the 3-4-5 row really sits at distance exactly 5.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.predicates import (
    Inequality,
    Intersects,
    IntervalOverlap,
    JoinPredicate,
    WithinDistance,
)

Coords = Tuple[float, float, float, float]


@dataclass(frozen=True)
class EdgeCase:
    """One pinned boundary decision."""

    label: str
    a: Coords  # (xmin, ymin, xmax, ymax)
    b: Coords
    predicate: JoinPredicate
    expected: bool


EDGE_CASES = [
    # -- closed intersection boundaries --------------------------------
    EdgeCase("touching_edges_intersect", (0, 0, 1, 1), (1, 0, 2, 1), Intersects(), True),
    EdgeCase("touching_corner_intersects", (0, 0, 1, 1), (1, 1, 2, 2), Intersects(), True),
    EdgeCase("separated_disjoint", (0, 0, 1, 1), (1.5, 0, 2.5, 1), Intersects(), False),
    EdgeCase("coincident_points_intersect", (0.5, 0.5, 0.5, 0.5), (0.5, 0.5, 0.5, 0.5), Intersects(), True),
    EdgeCase("zero_area_on_edge_intersects", (0, 0, 1, 1), (1, 0.5, 1, 0.5), Intersects(), True),
    # -- ε-distance: exactly-ε pairs qualify (closed) ------------------
    EdgeCase("gap_exactly_eps_axis", (0, 0, 1, 1), (1.5, 0, 2.5, 1), WithinDistance(0.5), True),
    EdgeCase("gap_above_eps_axis", (0, 0, 1, 1), (1.5, 0, 2.5, 1), WithinDistance(0.25), False),
    EdgeCase("gap_345_eps5", (0, 0, 1, 1), (4, 5, 5, 6), WithinDistance(5.0), True),
    EdgeCase("gap_345_eps4", (0, 0, 1, 1), (4, 5, 5, 6), WithinDistance(4.0), False),
    EdgeCase("eps0_is_touching", (0, 0, 1, 1), (1, 1, 2, 2), WithinDistance(0.0), True),
    EdgeCase("eps0_not_separated", (0, 0, 1, 1), (1.5, 0, 2.5, 1), WithinDistance(0.0), False),
    EdgeCase("points_at_eps", (0, 0, 0, 0), (0.5, 0, 0.5, 0), WithinDistance(0.5), True),
    EdgeCase("points_past_eps", (0, 0, 0, 0), (0.5, 0, 0.5, 0), WithinDistance(0.25), False),
    # -- interval overlap: shared endpoints count ----------------------
    EdgeCase("intervals_share_endpoint_x", (0, 0, 1, 1), (1, 5, 2, 6), IntervalOverlap("x"), True),
    EdgeCase("intervals_disjoint_x", (0, 0, 1, 1), (1.5, 0, 2.5, 1), IntervalOverlap("x"), False),
    EdgeCase("intervals_nested_x", (0, 0, 4, 1), (1, 9, 2, 10), IntervalOverlap("x"), True),
    EdgeCase("intervals_share_endpoint_y", (0, 0, 1, 1), (5, 1, 6, 2), IntervalOverlap("y"), True),
    EdgeCase("degenerate_interval_on_boundary", (0, 0, 1, 1), (1, 7, 1, 8), IntervalOverlap("x"), True),
    # -- inequality: equal endpoints decide le/ge, not lt/gt -----------
    EdgeCase("equal_xmin_lt", (0.5, 0, 1, 1), (0.5, 5, 2, 6), Inequality("lt", "xmin"), False),
    EdgeCase("equal_xmin_le", (0.5, 0, 1, 1), (0.5, 5, 2, 6), Inequality("le", "xmin"), True),
    EdgeCase("equal_xmin_gt", (0.5, 0, 1, 1), (0.5, 5, 2, 6), Inequality("gt", "xmin"), False),
    EdgeCase("equal_xmin_ge", (0.5, 0, 1, 1), (0.5, 5, 2, 6), Inequality("ge", "xmin"), True),
    EdgeCase("smaller_xmin_lt", (0.25, 0, 1, 1), (0.5, 0, 2, 1), Inequality("lt", "xmin"), True),
    EdgeCase("larger_xmax_gt", (0, 0, 3, 1), (0.5, 0, 2, 1), Inequality("gt", "xmax"), True),
    EdgeCase("equal_ymax_lt", (0, 0, 1, 2), (5, 1, 6, 2), Inequality("lt", "ymax"), False),
    EdgeCase("equal_ymax_le", (0, 0, 1, 2), (5, 1, 6, 2), Inequality("le", "ymax"), True),
]
