"""Predicate-aware estimator rungs: exactness anchors, accuracy sanity,
fallback-ladder shapes, and the resilient-service integration.

The load-bearing exact checks: ``InflatedEstimator`` at ε = 0 is
bit-identical to its wrapped estimator, the endpoint inequality
estimates obey the complement identity bit-exactly, and the resilient
service answers a healthy predicate primary with the primary's own
number.  The accuracy checks are loose sanity bands — the tight
per-pair ceilings live in the golden corpus.
"""

import pytest

from repro.core.estimator import (
    GHEstimator,
    ParametricEstimator,
    PHEstimator,
    SamplingEstimatorAdapter,
)
from repro.datasets import make_clustered, make_uniform
from repro.predicates import (
    EndpointInequalityEstimator,
    Inequality,
    Intersects,
    IntervalOverlap,
    IntervalOverlapEstimator,
    InflatedEstimator,
    ParametricIntervalEstimator,
    WithinDistance,
    create_predicate_estimator,
    predicate_fallback_chain,
    predicate_of,
    predicate_selectivity,
)
from repro.service import ResilientEstimator

pytestmark = pytest.mark.accuracy

_EPS = 0.05


@pytest.fixture(scope="module")
def datasets():
    return (
        make_uniform(2000, seed=31, name="u"),
        make_clustered(1500, seed=32, name="c"),
    )


# -- InflatedEstimator --------------------------------------------------


@pytest.mark.parametrize(
    "inner_factory",
    [lambda: GHEstimator(level=6), lambda: PHEstimator(level=5), ParametricEstimator],
    ids=["gh6", "ph5", "parametric"],
)
def test_eps_zero_bit_identical_to_inner(datasets, inner_factory):
    ds1, ds2 = datasets
    inner = inner_factory()
    wrapped = InflatedEstimator(inner_factory(), 0.0)
    assert wrapped.estimate(ds1, ds2) == inner.estimate(ds1, ds2)


def test_inflated_estimator_tracks_epsilon_growth(datasets):
    """More ε → more buffered overlap → monotonically larger estimates,
    and each estimate lands within a loose band of the exact answer."""
    ds1, ds2 = datasets
    estimates = []
    for eps in (0.0, 0.02, _EPS):
        estimator = InflatedEstimator(GHEstimator(level=6), eps)
        est = estimator.estimate(ds1, ds2)
        exact = predicate_selectivity(ds1.rects, ds2.rects, WithinDistance(eps))
        assert 0.0 <= est <= 1.0
        # Two-sided ε/2 buffering over-counts L2 corners by design;
        # 2x is far outside any plausible regression band.
        assert est == pytest.approx(exact, rel=1.0)
        estimates.append(est)
    assert estimates == sorted(estimates)


def test_inflated_estimator_validation():
    with pytest.raises(TypeError, match="PreparedEstimator"):
        InflatedEstimator(SamplingEstimatorAdapter(), 0.1)
    with pytest.raises(ValueError, match="eps"):
        InflatedEstimator(GHEstimator(level=5), -1.0)
    estimator = InflatedEstimator(GHEstimator(level=5), 0.25)
    assert estimator.name == "inflated_gh"
    assert estimator.level == 5
    assert estimator.predicate == WithinDistance(0.25)


# -- 1-D histogram estimators ------------------------------------------


@pytest.mark.parametrize("endpoint", ["xmin", "ymax"])
def test_endpoint_estimator_complement_is_bit_exact(datasets, endpoint):
    ds1, ds2 = datasets
    lt = EndpointInequalityEstimator(Inequality("lt", endpoint), level=6)
    ge = EndpointInequalityEstimator(Inequality("ge", endpoint), level=6)
    assert lt.estimate(ds1, ds2) + ge.estimate(ds1, ds2) == 1.0


def test_endpoint_estimator_accuracy(datasets):
    ds1, ds2 = datasets
    predicate = Inequality("lt", "xmin")
    exact = predicate_selectivity(ds1.rects, ds2.rects, predicate)
    est = EndpointInequalityEstimator(predicate, level=6).estimate(ds1, ds2)
    assert est == pytest.approx(exact, rel=0.05)
    # Level 0 is the single-bucket closed form: everything in one bucket
    # estimates P(lt) = 1/2.
    assert EndpointInequalityEstimator(predicate, level=0).estimate(ds1, ds2) == 0.5


def test_interval_estimator_accuracy(datasets):
    ds1, ds2 = datasets
    predicate = IntervalOverlap("x")
    exact = predicate_selectivity(ds1.rects, ds2.rects, predicate)
    est = IntervalOverlapEstimator(predicate, level=6).estimate(ds1, ds2)
    assert 0.0 <= est <= 1.0
    assert est == pytest.approx(exact, rel=0.5)


def test_parametric_interval_estimator(datasets):
    ds1, ds2 = datasets
    est = ParametricIntervalEstimator(IntervalOverlap("x")).estimate(ds1, ds2)
    spans1 = ds1.rects.widths().mean()
    spans2 = ds2.rects.widths().mean()
    assert est == pytest.approx((spans1 + spans2) / ds1.extent.width)


def test_one_d_estimator_validation():
    with pytest.raises(TypeError, match="Inequality"):
        EndpointInequalityEstimator(Intersects())
    with pytest.raises(TypeError, match="IntervalOverlap"):
        IntervalOverlapEstimator(Inequality())
    with pytest.raises(TypeError, match="IntervalOverlap"):
        ParametricIntervalEstimator(Intersects())
    with pytest.raises(ValueError, match="level"):
        EndpointInequalityEstimator(Inequality(), level=-1)
    with pytest.raises(ValueError, match="level"):
        IntervalOverlapEstimator(IntervalOverlap(), level=-2)


# -- predicate_of -------------------------------------------------------


def test_predicate_of():
    assert predicate_of(GHEstimator(level=5)) is None
    assert predicate_of(InflatedEstimator(GHEstimator(level=5), 0.1)) == WithinDistance(0.1)
    assert predicate_of(EndpointInequalityEstimator(Inequality("le", "ymin"))) == Inequality("le", "ymin")
    assert predicate_of(SamplingEstimatorAdapter(predicate=IntervalOverlap("y"))) == IntervalOverlap("y")
    # An explicit Intersects predicate is "no predicate" for chains.
    assert predicate_of(SamplingEstimatorAdapter(predicate=Intersects())) is None
    assert predicate_of(SamplingEstimatorAdapter()) is None


# -- fallback chains ----------------------------------------------------


def test_inflated_chain_rewraps_every_rung():
    primary = InflatedEstimator(GHEstimator(level=6), 0.25)
    chain = predicate_fallback_chain(primary)
    assert chain[0] is primary
    assert len(chain) >= 3
    for rung in chain:
        assert isinstance(rung, InflatedEstimator)
        assert rung.eps == 0.25
    # The floor is statistics-only: the inflated parametric closed form.
    assert isinstance(chain[-1].inner, ParametricEstimator)


def test_endpoint_chain_coarsens_to_level_zero():
    chain = predicate_fallback_chain(EndpointInequalityEstimator(Inequality(), level=6))
    assert [r.level for r in chain] == [6, 3, 0]
    assert all(isinstance(r, EndpointInequalityEstimator) for r in chain)
    # Already at the floor: a level-0 primary gets no rungs below it.
    floor = EndpointInequalityEstimator(Inequality(), level=0)
    assert [r.level for r in predicate_fallback_chain(floor)] == [0]


def test_interval_chain_floors_at_parametric():
    chain = predicate_fallback_chain(IntervalOverlapEstimator(IntervalOverlap(), level=6))
    assert isinstance(chain[0], IntervalOverlapEstimator)
    assert isinstance(chain[-1], ParametricIntervalEstimator)
    assert len(chain) == 3


@pytest.mark.parametrize(
    "predicate",
    [WithinDistance(0.1), Inequality("gt", "xmax"), IntervalOverlap("y")],
    ids=lambda p: p.key,
)
def test_sampling_primary_gets_matching_histogram_ladder(predicate):
    primary = SamplingEstimatorAdapter(predicate=predicate)
    chain = predicate_fallback_chain(primary)
    assert chain[0] is primary
    assert len(chain) == 3
    for rung in chain[1:]:
        assert predicate_of(rung) == predicate


@pytest.mark.parametrize(
    "factory",
    [
        lambda: InflatedEstimator(GHEstimator(level=6), _EPS),
        lambda: EndpointInequalityEstimator(Inequality("lt", "xmin"), level=6),
        lambda: IntervalOverlapEstimator(IntervalOverlap("x"), level=6),
    ],
    ids=["inflated", "endpoint", "interval"],
)
def test_resilient_service_answers_with_the_primary(datasets, factory):
    """ResilientEstimator builds a predicate-aware ladder automatically
    and, on healthy inputs, answers with the primary's own estimate."""
    ds1, ds2 = datasets
    primary = factory()
    resilient = ResilientEstimator(primary)
    assert resilient.estimate(ds1, ds2) == factory().estimate(ds1, ds2)


# -- create_predicate_estimator ----------------------------------------


def test_create_dispatch():
    assert isinstance(create_predicate_estimator("gh", Intersects(), level=6), GHEstimator)
    wrapped = create_predicate_estimator("gh", WithinDistance(0.1), level=6)
    assert isinstance(wrapped, InflatedEstimator)
    assert wrapped.eps == 0.1
    assert isinstance(wrapped.inner, GHEstimator)
    sampler = create_predicate_estimator("sampling", Inequality("lt", "xmin"))
    assert isinstance(sampler, SamplingEstimatorAdapter)
    endpoint = create_predicate_estimator("gh", Inequality("lt", "xmin"), level=4)
    assert isinstance(endpoint, EndpointInequalityEstimator)
    assert endpoint.level == 4
    assert isinstance(
        create_predicate_estimator("parametric", Inequality("lt", "xmin")),
        EndpointInequalityEstimator,
    )
    assert create_predicate_estimator("parametric", Inequality("lt", "xmin")).level == 0
    assert isinstance(
        create_predicate_estimator("gh", IntervalOverlap("x")), IntervalOverlapEstimator
    )
    assert isinstance(
        create_predicate_estimator("parametric", IntervalOverlap("x")),
        ParametricIntervalEstimator,
    )


def test_create_dispatch_errors():
    with pytest.raises(ValueError, match="unknown estimator kind"):
        create_predicate_estimator("bogus", WithinDistance(0.1))
    with pytest.raises(ValueError, match="unsupported kwargs"):
        create_predicate_estimator("gh", Inequality(), bogus=1)


def test_sampling_adapter_matches_direct_predicate_join(datasets):
    """The sampling adapter with a predicate estimates the predicate's
    selectivity, not the intersection's — anchor on a 100% 'sample'."""
    ds1, ds2 = datasets
    predicate = Inequality("lt", "xmin")
    adapter = SamplingEstimatorAdapter(
        method="rs", fraction1=1.0, fraction2=1.0, seed=5, predicate=predicate
    )
    exact = predicate_selectivity(ds1.rects, ds2.rects, predicate)
    assert adapter.estimate(ds1, ds2) == pytest.approx(exact)
