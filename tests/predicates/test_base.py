"""Unit tests for the predicate algebra itself.

The engines are gated elsewhere (edge-case table, differential matrix,
hypothesis properties); this file pins the *value semantics* of the
predicate objects: validation, key roundtrips, hashing/equality, and the
metamorphic algebra (``translated``/``scaled``/``swapped_axes``/
``reversed``/``complement``) that the metamorphic suite builds on.
"""

import pickle

import numpy as np
import pytest

from repro.predicates import (
    AXES,
    ENDPOINTS,
    INEQUALITY_OPS,
    STANDARD_PREDICATES,
    Inequality,
    Intersects,
    IntervalOverlap,
    JoinPredicate,
    WithinDistance,
    predicate_from_key,
)

ALL_PREDICATES = [
    Intersects(),
    WithinDistance(0.0),
    WithinDistance(0.25),
    IntervalOverlap("x"),
    IntervalOverlap("y"),
    *[Inequality(op, ep) for op in sorted(INEQUALITY_OPS) for ep in ENDPOINTS],
]


@pytest.mark.parametrize("predicate", ALL_PREDICATES, ids=lambda p: p.key)
def test_key_roundtrip(predicate):
    assert predicate_from_key(predicate.key) == predicate


@pytest.mark.parametrize("predicate", ALL_PREDICATES, ids=lambda p: p.key)
def test_frozen_hashable_picklable(predicate):
    assert isinstance(predicate, JoinPredicate)
    assert hash(predicate) == hash(predicate_from_key(predicate.key))
    clone = pickle.loads(pickle.dumps(predicate))
    assert clone == predicate
    with pytest.raises(AttributeError):
        predicate.frozen_marker = 1  # dataclass(frozen=True)


@pytest.mark.parametrize(
    "key",
    ["", "nope", "within:abc", "within:", "interval:z", "ineq:xmin:??", "ineq:zmax:lt"],
)
def test_bad_keys_rejected(key):
    with pytest.raises(ValueError):
        predicate_from_key(key)


def test_constructor_validation():
    with pytest.raises(ValueError):
        WithinDistance(-0.5)
    with pytest.raises(ValueError):
        WithinDistance(float("nan"))
    with pytest.raises(ValueError):
        WithinDistance(float("inf"))
    with pytest.raises(ValueError):
        IntervalOverlap("diag")
    with pytest.raises(ValueError):
        Inequality("ne", "xmin")
    with pytest.raises(ValueError):
        Inequality("lt", "center")


def test_standard_registry_shape():
    assert set(STANDARD_PREDICATES) == {
        "intersects", "within_eps", "interval_x", "ineq_lt_xmin",
    }
    # One representative per predicate type, keys self-describing.
    types = {type(p) for p in STANDARD_PREDICATES.values()}
    assert types == {Intersects, WithinDistance, IntervalOverlap, Inequality}
    for predicate in STANDARD_PREDICATES.values():
        assert predicate_from_key(predicate.key) == predicate


# -- metamorphic algebra ------------------------------------------------


@pytest.mark.parametrize("predicate", ALL_PREDICATES, ids=lambda p: p.key)
def test_translation_is_always_identity(predicate):
    assert predicate.translated(0.5, -0.25) == predicate


def test_scaling():
    assert Intersects().scaled(4.0) == Intersects()
    assert IntervalOverlap("y").scaled(4.0) == IntervalOverlap("y")
    assert Inequality("le", "ymax").scaled(4.0) == Inequality("le", "ymax")
    assert WithinDistance(0.25).scaled(4.0) == WithinDistance(1.0)
    assert WithinDistance(0.0).scaled(4.0) == WithinDistance(0.0)
    for predicate in (Intersects(), WithinDistance(0.25)):
        with pytest.raises(ValueError):
            predicate.scaled(0.0)
        with pytest.raises(ValueError):
            predicate.scaled(-2.0)


def test_swapped_axes():
    assert Intersects().swapped_axes() == Intersects()
    assert WithinDistance(0.25).swapped_axes() == WithinDistance(0.25)
    assert IntervalOverlap("x").swapped_axes() == IntervalOverlap("y")
    assert IntervalOverlap("y").swapped_axes() == IntervalOverlap("x")
    assert Inequality("lt", "xmin").swapped_axes() == Inequality("lt", "ymin")
    assert Inequality("ge", "ymax").swapped_axes() == Inequality("ge", "xmax")


@pytest.mark.parametrize("predicate", ALL_PREDICATES, ids=lambda p: p.key)
def test_swapped_axes_is_an_involution(predicate):
    assert predicate.swapped_axes().swapped_axes() == predicate


def test_reversed():
    assert Intersects().reversed() == Intersects()
    assert WithinDistance(0.25).reversed() == WithinDistance(0.25)
    assert IntervalOverlap("x").reversed() == IntervalOverlap("x")
    assert Inequality("lt", "xmin").reversed() == Inequality("gt", "xmin")
    assert Inequality("le", "ymax").reversed() == Inequality("ge", "ymax")


@pytest.mark.parametrize("predicate", ALL_PREDICATES, ids=lambda p: p.key)
def test_reversed_is_an_involution(predicate):
    assert predicate.reversed().reversed() == predicate


@pytest.mark.parametrize("op", sorted(INEQUALITY_OPS))
def test_inequality_complement(op):
    predicate = Inequality(op, "xmax")
    complement = predicate.complement()
    assert complement.complement() == predicate
    assert complement != predicate
    # reversed == complement-of-strictness: lt reverses to gt but
    # complements to ge — pin that they differ for every op.
    assert complement != predicate.reversed()


def test_inequality_values_column():
    rng = np.random.default_rng(7)
    from repro.geometry import RectArray

    xmin = np.sort(rng.random(8))
    rects = RectArray(xmin, np.zeros(8), xmin + 0.1, np.ones(8))
    np.testing.assert_array_equal(Inequality("lt", "xmin").values(rects), rects.xmin)
    np.testing.assert_array_equal(Inequality("lt", "ymax").values(rects), rects.ymax)


def test_axes_and_endpoints_constants():
    assert AXES == ("x", "y")
    assert ENDPOINTS == ("xmin", "xmax", "ymin", "ymax")
    assert set(INEQUALITY_OPS) == {"lt", "le", "gt", "ge"}
