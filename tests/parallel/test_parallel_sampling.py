"""The multiprocess sampling-replica driver must be value-identical to
the serial loop (seeds fully determine every draw)."""

import pytest

from repro.datasets import make_clustered, make_uniform
from repro.parallel import parallel_sampling_estimates
from repro.runtime import Deadline, runtime_scope
from repro.sampling import SamplingJoinEstimator


@pytest.fixture(scope="module")
def pair():
    return make_uniform(1200, seed=5, name="U"), make_clustered(1000, seed=6, name="C")


def _configs(methods=("rs", "rswr", "ss"), seeds=(0, 1)):
    return [
        dict(method=m, fraction1=0.25, fraction2=0.25, seed=s)
        for m in methods
        for s in seeds
    ]


class TestValueIdentity:
    def test_parallel_equals_serial(self, pair):
        ds1, ds2 = pair
        configs = _configs()
        serial = parallel_sampling_estimates(configs, ds1, ds2, workers=1)
        parallel = parallel_sampling_estimates(configs, ds1, ds2, workers=2)
        assert serial == parallel

    def test_order_preserved(self, pair):
        ds1, ds2 = pair
        configs = _configs(seeds=(3, 4, 5))
        values = parallel_sampling_estimates(configs, ds1, ds2, workers=2)
        direct = [SamplingJoinEstimator(**c).estimate(ds1, ds2) for c in configs]
        assert values == direct


class TestConfidenceWiring:
    def test_confidence_interval_identical(self, pair):
        ds1, ds2 = pair
        est = SamplingJoinEstimator("rswr", 0.2, 0.2, seed=9)
        serial = est.estimate_with_confidence(ds1, ds2, repeats=4)
        par = est.estimate_with_confidence(ds1, ds2, repeats=4, workers=2)
        assert serial == par

    def test_rs_still_rejected(self, pair):
        ds1, ds2 = pair
        with pytest.raises(ValueError):
            SamplingJoinEstimator("rs", 0.2, 0.2).estimate_with_confidence(
                ds1, ds2, workers=2
            )


class TestFallbacks:
    def test_active_scope_stays_serial_and_identical(self, pair):
        ds1, ds2 = pair
        configs = _configs(methods=("rs",), seeds=(0,)) * 2
        with runtime_scope(Deadline(None)):
            scoped = parallel_sampling_estimates(configs, ds1, ds2, workers=2)
        unscoped = parallel_sampling_estimates(configs, ds1, ds2, workers=1)
        assert scoped == unscoped

    def test_empty_dataset_serial(self, pair):
        ds1, _ = pair
        empty = make_uniform(0, seed=0, name="E")
        values = parallel_sampling_estimates(
            _configs(seeds=(0, 1)), ds1, empty, workers=2
        )
        assert values == [0.0] * 6

    def test_single_config_serial(self, pair):
        ds1, ds2 = pair
        values = parallel_sampling_estimates(
            _configs(methods=("rs",), seeds=(0,)), ds1, ds2, workers=2
        )
        assert len(values) == 1 and values[0] >= 0.0
