"""Unit tests for the multiprocess PBSM engine: fallback provenance,
bit-identity, shard accounting, deadline threading, shm lifecycle."""

import numpy as np
import pytest

from repro.errors import EstimationTimeout
from repro.eval.timing import ShardTiming, shard_balance
from repro.geometry import RectArray
from repro.join import join_count, join_pairs, partition_join_count, partition_join_pairs
from repro.parallel import (
    SharedRects,
    attach_rects,
    parallel_partition_join_count,
    parallel_partition_join_detailed,
    parallel_partition_join_pairs,
    resolve_workers,
)
from repro.runtime import Deadline, runtime_scope
from repro.service import FaultPlan, FaultSpec, inject_faults
from tests.conftest import random_rects


@pytest.fixture
def medium_pair(rng):
    return random_rects(rng, 3000), random_rects(rng, 2500)


class TestBitIdentity:
    def test_count_and_pairs_match_serial(self, medium_pair):
        a, b = medium_pair
        result = parallel_partition_join_detailed(
            a, b, workers=2, collect_pairs=True, min_parallel=0
        )
        assert result.parallel
        assert result.count == partition_join_count(a, b)
        assert np.array_equal(result.pairs, partition_join_pairs(a, b))

    def test_shard_counts_partition_the_total(self, medium_pair):
        a, b = medium_pair
        result = parallel_partition_join_detailed(a, b, workers=2, min_parallel=0)
        assert sum(t.count for t in result.shards) == result.count
        assert sum(t.rows for t in result.shards) == result.grid
        assert all(isinstance(t, ShardTiming) and t.seconds >= 0 for t in result.shards)

    def test_explicit_grid_respected(self, medium_pair):
        a, b = medium_pair
        serial = partition_join_count(a, b, grid=13)
        result = parallel_partition_join_detailed(
            a, b, workers=2, grid=13, min_parallel=0
        )
        assert result.grid == 13
        assert result.count == serial


class TestFallbacks:
    def test_small_input_falls_back(self, medium_pair):
        a, b = medium_pair
        result = parallel_partition_join_detailed(a, b, workers=2)  # default threshold
        assert not result.parallel
        assert "threshold" in result.fallback_reason
        assert result.count == partition_join_count(a, b)

    def test_single_worker_falls_back(self, medium_pair):
        a, b = medium_pair
        result = parallel_partition_join_detailed(a, b, workers=1, min_parallel=0)
        assert result.fallback_reason == "single worker requested"
        assert result.workers == 1

    def test_empty_input_short_circuits(self):
        empty = RectArray.empty()
        some = random_rects(np.random.default_rng(0), 10)
        result = parallel_partition_join_detailed(empty, some, workers=2, min_parallel=0)
        assert result.count == 0
        assert result.fallback_reason == "empty input"

    def test_active_fault_hook_forces_serial(self, medium_pair):
        a, b = medium_pair
        plan = FaultPlan([FaultSpec("never.fires", times=0)])
        with inject_faults(plan):
            result = parallel_partition_join_detailed(a, b, workers=2, min_parallel=0)
        assert result.fallback_reason == "active runtime hook demands in-context checkpoints"
        assert result.count == partition_join_count(a, b)

    def test_fallback_still_collects_pairs(self, medium_pair):
        a, b = medium_pair
        result = parallel_partition_join_detailed(
            a, b, workers=1, collect_pairs=True, min_parallel=0
        )
        assert np.array_equal(result.pairs, partition_join_pairs(a, b))

    def test_resolve_workers(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestDeadline:
    def test_expired_deadline_raises(self, medium_pair):
        a, b = medium_pair
        with runtime_scope(Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                parallel_partition_join_detailed(a, b, workers=2, min_parallel=0)

    def test_generous_deadline_threads_through_workers(self, medium_pair):
        a, b = medium_pair
        with runtime_scope(Deadline(60.0)):
            result = parallel_partition_join_detailed(a, b, workers=2, min_parallel=0)
        assert result.parallel
        assert result.count == partition_join_count(a, b)


class TestApiWiring:
    def test_join_count_workers(self, medium_pair):
        a, b = medium_pair
        assert join_count(a, b, workers=2) == join_count(a, b)

    def test_join_pairs_workers(self, medium_pair):
        a, b = medium_pair
        assert np.array_equal(join_pairs(a, b, workers=2), join_pairs(a, b))

    def test_convenience_wrappers(self, medium_pair):
        a, b = medium_pair
        count = parallel_partition_join_count(a, b, workers=2, min_parallel=0)
        pairs = parallel_partition_join_pairs(a, b, workers=2, min_parallel=0)
        assert count == len(pairs)


class TestSharedMemory:
    def test_roundtrip_same_process(self, rng):
        rects = random_rects(rng, 123)
        with SharedRects(rects) as shared:
            back = attach_rects(shared.name, shared.n)
            assert back == rects
            # Idempotent attach returns the cached view.
            assert attach_rects(shared.name, shared.n) is back

    def test_empty_array_roundtrip(self):
        with SharedRects(RectArray.empty()) as shared:
            assert shared.n == 0

    def test_cleanup_idempotent(self, rng):
        shared = SharedRects(random_rects(rng, 10))
        shared.cleanup()
        shared.cleanup()  # second call must not raise


class TestShardBalance:
    def test_summary_fields(self, medium_pair):
        a, b = medium_pair
        result = parallel_partition_join_detailed(a, b, workers=2, min_parallel=0)
        summary = shard_balance(result.shards)
        assert summary["shards"] == len(result.shards)
        assert summary["imbalance"] >= 1.0
        assert summary["max_seconds"] <= summary["total_seconds"]

    def test_empty_summary(self):
        summary = shard_balance(())
        assert summary["shards"] == 0
        assert summary["imbalance"] == 1.0
