"""Cross-engine agreement: all six exact joins (including the
multiprocess partition engine and the flat SoA R-tree engine) must
produce identical results on every input shape, including adversarial
ones (touching edges, duplicates, points, heavy skew)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    make_clustered,
    make_diagonal,
    make_gaussian_clusters,
    make_grid_aligned,
    make_uniform,
)
from repro.geometry import Rect, RectArray
from repro.join import (
    nested_loop_count,
    nested_loop_pairs,
    partition_join_count,
    partition_join_pairs,
    plane_sweep_count,
    plane_sweep_pairs,
)
from repro.parallel import parallel_partition_join_count, parallel_partition_join_pairs
from repro.rtree import (
    bulk_load_str,
    flat_join_count,
    flat_join_pairs,
    flat_load_str,
    rtree_join_count,
    rtree_join_pairs,
)
from tests.conftest import random_rects


def _parallel_count(a, b):
    return parallel_partition_join_count(a, b, workers=2, min_parallel=0)


def _parallel_pairs(a, b):
    return parallel_partition_join_pairs(a, b, workers=2, min_parallel=0)


COUNTERS = {
    "nested": nested_loop_count,
    "sweep": plane_sweep_count,
    "partition": partition_join_count,
    "rtree": lambda a, b: rtree_join_count(bulk_load_str(a), bulk_load_str(b)),
    "flat": lambda a, b: flat_join_count(flat_load_str(a), flat_load_str(b)),
}
PAIRERS = {
    "nested": nested_loop_pairs,
    "sweep": plane_sweep_pairs,
    "partition": partition_join_pairs,
    "rtree": lambda a, b: rtree_join_pairs(bulk_load_str(a), bulk_load_str(b)),
    "flat": lambda a, b: flat_join_pairs(flat_load_str(a), flat_load_str(b)),
}
# The full differential matrix adds the multiprocess engine.  The
# hypothesis property tests below keep the serial dicts: spinning one
# worker pool per generated example would dominate their runtime without
# adding coverage beyond the seeded matrix.
ALL_COUNTERS = {**COUNTERS, "parallel": _parallel_count}
ALL_PAIRERS = {**PAIRERS, "parallel": _parallel_pairs}


def all_counts(a, b, counters=COUNTERS):
    return {name: fn(a, b) for name, fn in counters.items()}


class TestRandomInputs:
    def test_uniform(self, two_rect_sets):
        a, b = two_rect_sets
        counts = all_counts(a, b, ALL_COUNTERS)
        assert len(set(counts.values())) == 1, counts

    def test_pairs_identical(self, two_rect_sets):
        a, b = two_rect_sets
        reference = nested_loop_pairs(a, b)
        for name, fn in ALL_PAIRERS.items():
            assert np.array_equal(fn(a, b), reference), name

    def test_skewed_vs_uniform(self, rng):
        cx = 0.3 + 0.02 * rng.standard_normal(800)
        cy = 0.7 + 0.02 * rng.standard_normal(800)
        a = RectArray.from_centers(np.clip(cx, 0, 1), np.clip(cy, 0, 1), 0.01, 0.01)
        b = random_rects(rng, 800)
        counts = all_counts(a, b, ALL_COUNTERS)
        assert len(set(counts.values())) == 1, counts

    def test_points_vs_rects(self, rng):
        a = RectArray.from_points(rng.random(500), rng.random(500))
        b = random_rects(rng, 500)
        counts = all_counts(a, b, ALL_COUNTERS)
        assert len(set(counts.values())) == 1, counts

    def test_large_rects(self, rng):
        # Rectangles spanning large fractions of the extent stress
        # replication (PBSM) and active-list size (sweep).
        a = random_rects(rng, 150, max_side=0.9)
        b = random_rects(rng, 150, max_side=0.9)
        counts = all_counts(a, b, ALL_COUNTERS)
        assert len(set(counts.values())) == 1, counts


#: Seeded dataset generators for the differential fuzz matrix — each row
#: produces a (ds1, ds2) pair with a distinct spatial pathology.
_MATRIX_PAIRS = {
    "uniform_x_uniform": lambda: (
        make_uniform(900, seed=11).rects,
        make_uniform(700, seed=12).rects,
    ),
    "clustered_x_uniform": lambda: (
        make_clustered(800, seed=21, spread=0.05).rects,
        make_uniform(800, seed=22).rects,
    ),
    "zipf_x_diagonal": lambda: (
        make_gaussian_clusters(850, seed=31, n_clusters=6).rects,
        make_diagonal(650, seed=32).rects,
    ),
    "grid_x_clustered": lambda: (
        make_grid_aligned(640, seed=41).rects,
        make_clustered(700, seed=42, spread=0.2).rects,
    ),
}


@pytest.mark.accuracy
class TestDifferentialMatrix:
    """Random datasets × all six engines: counts AND pair sets must
    agree exactly.  This is the differential gate the parallel oracle
    and the flat SoA engine are held to — one seeded matrix row per
    spatial pathology."""

    @pytest.mark.parametrize("pair_name", sorted(_MATRIX_PAIRS))
    def test_counts_and_pairs_agree(self, pair_name):
        a, b = _MATRIX_PAIRS[pair_name]()
        reference_pairs = nested_loop_pairs(a, b)
        reference_count = nested_loop_count(a, b)
        assert reference_count == len(reference_pairs)
        for name, fn in ALL_COUNTERS.items():
            assert fn(a, b) == reference_count, f"{pair_name}: {name} count"
        for name, fn in ALL_PAIRERS.items():
            assert np.array_equal(fn(a, b), reference_pairs), f"{pair_name}: {name} pairs"

    def test_parallel_matches_serial_across_worker_counts(self):
        a, b = _MATRIX_PAIRS["clustered_x_uniform"]()
        serial = partition_join_pairs(a, b)
        for workers in (2, 3):
            got = parallel_partition_join_pairs(a, b, workers=workers, min_parallel=0)
            assert np.array_equal(got, serial), workers


class TestEdgeCases:
    def test_empty_sides(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        empty = RectArray.empty()
        for fn in COUNTERS.values():
            assert fn(a, empty) == 0
            assert fn(empty, a) == 0
            assert fn(empty, empty) == 0

    def test_single_pair_touching_edge(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(1, 0, 2, 1)])
        for name, fn in COUNTERS.items():
            assert fn(a, b) == 1, name

    def test_single_pair_touching_corner(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(1, 1, 2, 2)])
        for name, fn in COUNTERS.items():
            assert fn(a, b) == 1, name

    def test_identical_coordinates_everywhere(self):
        a = RectArray.from_rects([Rect(0.5, 0.5, 0.5, 0.5)] * 10)
        b = RectArray.from_rects([Rect(0.5, 0.5, 0.5, 0.5)] * 7)
        for name, fn in COUNTERS.items():
            assert fn(a, b) == 70, name

    def test_grid_aligned_shared_edges(self):
        # A tiling where every neighbor touches: worst case for
        # closed-interval handling and for PBSM reference points.
        rects = [
            Rect(i * 0.25, j * 0.25, (i + 1) * 0.25, (j + 1) * 0.25)
            for i in range(4)
            for j in range(4)
        ]
        arr = RectArray.from_rects(rects)
        counts = all_counts(arr, arr)
        assert len(set(counts.values())) == 1, counts
        # Interior cell touches 8 neighbors + itself; verify via oracle.
        assert counts["nested"] == nested_loop_count(arr, arr)

    def test_degenerate_segments(self):
        a = RectArray.from_rects([Rect(0, 0.5, 1, 0.5), Rect(0.5, 0, 0.5, 1)])
        b = RectArray.from_rects([Rect(0.25, 0.25, 0.75, 0.75)])
        for name, fn in COUNTERS.items():
            assert fn(a, b) == 2, name


coords = st.floats(min_value=0, max_value=1, allow_nan=False)


@st.composite
def tiny_rect_arrays(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    vals = [
        Rect.from_points(draw(coords), draw(coords), draw(coords), draw(coords))
        for _ in range(n)
    ]
    return RectArray.from_rects(vals)


@settings(max_examples=60, deadline=None)
@given(tiny_rect_arrays(), tiny_rect_arrays())
def test_property_all_engines_agree(a, b):
    counts = all_counts(a, b)
    assert len(set(counts.values())) == 1, counts


@settings(max_examples=30, deadline=None)
@given(tiny_rect_arrays(), tiny_rect_arrays())
def test_property_pairs_agree(a, b):
    reference = nested_loop_pairs(a, b)
    for name, fn in PAIRERS.items():
        assert np.array_equal(fn(a, b), reference), name
