"""Unit tests for the blocked nested-loop oracle itself."""

import numpy as np

from repro.geometry import Rect, RectArray, pairwise_intersection_mask
from repro.join import nested_loop_count, nested_loop_pairs
from tests.conftest import random_rects


class TestBlocking:
    def test_block_boundaries_do_not_change_result(self, two_rect_sets):
        a, b = two_rect_sets
        reference = nested_loop_count(a, b, block=10_000)
        for block in (1, 7, 64, 299, 301):
            assert nested_loop_count(a, b, block=block) == reference

    def test_pairs_block_boundaries(self, rng):
        a = random_rects(rng, 150)
        b = random_rects(rng, 130)
        reference = nested_loop_pairs(a, b, block=10_000)
        for block in (1, 64, 129):
            assert np.array_equal(nested_loop_pairs(a, b, block=block), reference)


class TestAgainstDenseMask:
    def test_count_equals_mask_sum(self, rng):
        a = random_rects(rng, 80)
        b = random_rects(rng, 90)
        assert nested_loop_count(a, b) == int(pairwise_intersection_mask(a, b).sum())

    def test_pairs_equal_mask_nonzeros(self, rng):
        a = random_rects(rng, 60)
        b = random_rects(rng, 60)
        mask = pairwise_intersection_mask(a, b)
        ia, ib = np.nonzero(mask)
        expected = np.stack([ia, ib], axis=1)
        assert np.array_equal(nested_loop_pairs(a, b), expected)


class TestTrivial:
    def test_empty(self):
        assert nested_loop_count(RectArray.empty(), RectArray.empty()) == 0
        assert nested_loop_pairs(RectArray.empty(), RectArray.empty()).shape == (0, 2)

    def test_one_each_disjoint(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(2, 2, 3, 3)])
        assert nested_loop_count(a, b) == 0

    def test_asymmetric_definition(self):
        # count(a, b) with |a| x |b| pairs; count is symmetric in value.
        a = RectArray.from_rects([Rect(0, 0, 1, 1), Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(0.5, 0.5, 2, 2)])
        assert nested_loop_count(a, b) == nested_loop_count(b, a) == 2
