"""The pair-output ordering contract shared by every exact engine.

Contract (documented in :mod:`repro.join.api`): every ``*_pairs``
function — nested loop, plane sweep, PBSM, R-tree join, and the
multiprocess PBSM — returns

* a ``(k, 2)`` array of dtype ``int64`` (ids into the original inputs),
* with **unique** rows (each intersecting pair reported exactly once),
* sorted **lexicographically by (a_id, b_id)**.

The sort makes engine outputs (and serial-vs-parallel outputs) directly
comparable with ``np.array_equal``, which is what the differential
matrix in ``test_join_agreement.py`` relies on.  This module pins the
contract itself, so a future engine that forgets to canonicalize fails
here with a named reason instead of as an opaque matrix mismatch.
"""

import numpy as np
import pytest

from repro.join import (
    join_pairs,
    nested_loop_pairs,
    partition_join_pairs,
    plane_sweep_pairs,
)
from repro.join.partition import canonical_pair_order
from repro.parallel import parallel_partition_join_pairs
from repro.rtree import bulk_load_str, rtree_join_pairs
from tests.conftest import random_rects

pytestmark = pytest.mark.accuracy

PAIRERS = {
    "nested": nested_loop_pairs,
    "sweep": plane_sweep_pairs,
    "partition": partition_join_pairs,
    "rtree": lambda a, b: rtree_join_pairs(bulk_load_str(a), bulk_load_str(b)),
    "parallel": lambda a, b: parallel_partition_join_pairs(
        a, b, workers=2, min_parallel=0
    ),
    "api_auto": join_pairs,
}


def assert_canonical(pairs: np.ndarray) -> None:
    """Assert the full contract on one pair array."""
    assert pairs.dtype == np.int64
    assert pairs.ndim == 2 and pairs.shape[1] == 2
    if len(pairs) < 2:
        return
    # Lexicographic, strictly increasing (strictness == row uniqueness).
    a, b = pairs[:, 0], pairs[:, 1]
    increasing = (a[:-1] < a[1:]) | ((a[:-1] == a[1:]) & (b[:-1] < b[1:]))
    assert increasing.all(), "rows not in strict (a_id, b_id) lexicographic order"


@pytest.mark.parametrize("name", sorted(PAIRERS))
def test_pairs_are_canonical(name, rng):
    a = random_rects(rng, 400)
    b = random_rects(rng, 300)
    pairs = PAIRERS[name](a, b)
    assert len(pairs) > 0, "fixture produced a joinless pair — tighten max_side"
    assert_canonical(pairs)


@pytest.mark.parametrize("name", sorted(PAIRERS))
def test_empty_result_shape(name):
    a = random_rects(np.random.default_rng(1), 40, max_side=0.001)
    b = a.translate(500.0, 500.0)  # disjoint by construction
    pairs = PAIRERS[name](a, b)
    assert pairs.shape == (0, 2)
    assert pairs.dtype == np.int64


def test_canonical_pair_order_is_idempotent(rng):
    a = random_rects(rng, 350)
    b = random_rects(rng, 350)
    pairs = partition_join_pairs(a, b)
    assert np.array_equal(canonical_pair_order(pairs), pairs)
    # A shuffle sorts back to the same array — the order is total.
    shuffled = pairs[rng.permutation(len(pairs))]
    assert np.array_equal(canonical_pair_order(shuffled), pairs)
