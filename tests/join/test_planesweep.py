"""Unit tests specific to the plane-sweep join internals."""

import numpy as np

from repro.geometry import Rect, RectArray
from repro.join import plane_sweep_count, plane_sweep_pairs
from repro.join.planesweep import _ActiveList
from tests.conftest import random_rects


class TestActiveList:
    def test_insert_and_probe(self):
        active = _ActiveList(capacity=2)
        active.insert(0.0, 1.0, 0.5, 7)
        hits = active.probe_and_evict(0.2, 0.5, 0.8)
        assert hits.tolist() == [7]

    def test_growth_beyond_capacity(self):
        active = _ActiveList(capacity=2)
        for i in range(100):
            active.insert(0.0, 1.0, 10.0, i)
        assert active.size == 100
        hits = active.probe_and_evict(0.0, 0.0, 1.0)
        assert sorted(hits.tolist()) == list(range(100))

    def test_eviction_compacts_dead_entries(self):
        active = _ActiveList()
        active.insert(0.0, 1.0, 0.1, 0)  # dies at x > 0.1
        active.insert(0.0, 1.0, 0.9, 1)
        hits = active.probe_and_evict(0.5, 0.0, 1.0)
        assert hits.tolist() == [1]
        assert active.size == 1

    def test_touching_xmax_stays_live(self):
        active = _ActiveList()
        active.insert(0.0, 1.0, 0.5, 0)
        hits = active.probe_and_evict(0.5, 0.0, 1.0)  # sweep exactly at xmax
        assert hits.tolist() == [0]

    def test_y_filter(self):
        active = _ActiveList()
        active.insert(0.0, 0.2, 1.0, 0)
        active.insert(0.8, 1.0, 1.0, 1)
        hits = active.probe_and_evict(0.0, 0.3, 0.7)
        assert hits.tolist() == []

    def test_empty_probe(self):
        active = _ActiveList()
        assert active.probe_and_evict(0.0, 0.0, 1.0).shape == (0,)


class TestSweepSpecifics:
    def test_equal_xmin_tie_counted_once(self):
        # Both rects start at the same x; the pair must appear exactly once.
        a = RectArray.from_rects([Rect(0.5, 0.0, 1.0, 1.0)])
        b = RectArray.from_rects([Rect(0.5, 0.5, 0.8, 0.8)])
        assert plane_sweep_count(a, b) == 1
        assert plane_sweep_pairs(a, b).tolist() == [[0, 0]]

    def test_no_self_pairing_across_sides(self):
        # Identical arrays on both sides: n*n pairs (cross product of
        # overlapping identicals), not double-counted.
        arr = RectArray.from_rects([Rect(0, 0, 1, 1)] * 3)
        assert plane_sweep_count(arr, arr) == 9

    def test_long_thin_rects(self, rng):
        from repro.join import nested_loop_count

        # Very wide rects keep the active list long — the stress case.
        n = 300
        x0 = rng.random(n) * 0.1
        a = RectArray(x0, rng.random(n), x0 + 0.9, rng.random(n) + 1.0)
        b = random_rects(rng, 300)
        assert plane_sweep_count(a, b) == nested_loop_count(a, b)

    def test_pairs_lexicographically_sorted(self, two_rect_sets):
        a, b = two_rect_sets
        pairs = plane_sweep_pairs(a, b)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        assert np.array_equal(order, np.arange(len(pairs)))
