"""Numeric robustness: join engines on extreme coordinate regimes.

Geographic data comes in many units — degrees, meters (UTM: values in
the hundreds of thousands), web-mercator (tens of millions).  The exact
engines must agree regardless of magnitude and offset.
"""

import pytest

from repro.geometry import Rect, RectArray
from repro.join import (
    nested_loop_count,
    partition_join_count,
    plane_sweep_count,
)
from repro.rtree import bulk_load_str, rtree_join_count
from tests.conftest import random_rects

REGIMES = [
    ("unit", Rect(0, 0, 1, 1)),
    ("utm_meters", Rect(430_000.0, 4_580_000.0, 530_000.0, 4_700_000.0)),
    ("web_mercator", Rect(-1.3e7, 3.9e6, -1.29e7, 4.0e6)),
    ("tiny_micro", Rect(0.0, 0.0, 1e-6, 1e-6)),
    ("negative_quadrant", Rect(-500.0, -800.0, -100.0, -300.0)),
]


@pytest.mark.parametrize("name,extent", REGIMES, ids=[r[0] for r in REGIMES])
class TestEngineAgreementAcrossRegimes:
    def test_counts_agree(self, rng, name, extent):
        a = random_rects(rng, 400, extent=extent)
        b = random_rects(rng, 400, extent=extent)
        reference = nested_loop_count(a, b)
        assert plane_sweep_count(a, b) == reference
        assert partition_join_count(a, b) == reference
        assert rtree_join_count(bulk_load_str(a), bulk_load_str(b)) == reference

    def test_histograms_work(self, rng, name, extent):
        from repro.datasets import SpatialDataset
        from repro.histograms import gh_selectivity
        from repro.join import actual_selectivity

        a = SpatialDataset("a", random_rects(rng, 1200, extent=extent), extent)
        b = SpatialDataset("b", random_rects(rng, 1200, extent=extent), extent)
        truth = actual_selectivity(a.rects, b.rects)
        if truth:
            assert gh_selectivity(a, b, 4) == pytest.approx(truth, rel=0.4)


class TestMixedMagnitudes:
    def test_giant_and_tiny_rects_together(self, rng):
        giant = RectArray.from_rects([Rect(-1e6, -1e6, 1e6, 1e6)])
        tiny = random_rects(rng, 200, extent=Rect(0, 0, 1e-3, 1e-3))
        merged = RectArray.concatenate([giant, tiny])
        other = random_rects(rng, 200)
        reference = nested_loop_count(merged, other)
        assert partition_join_count(merged, other) == reference
        assert plane_sweep_count(merged, other) == reference
