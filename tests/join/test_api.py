"""Unit tests for the unified join API."""

import numpy as np
import pytest

from repro.geometry import Rect, RectArray
from repro.join import actual_selectivity, join_count, join_pairs, nested_loop_count
from tests.conftest import random_rects


class TestJoinCount:
    @pytest.mark.parametrize("method", ["auto", "nested", "sweep", "partition", "rtree"])
    def test_all_methods_agree(self, two_rect_sets, method):
        a, b = two_rect_sets
        assert join_count(a, b, method=method) == nested_loop_count(a, b)

    def test_unknown_method(self, two_rect_sets):
        a, b = two_rect_sets
        with pytest.raises(ValueError):
            join_count(a, b, method="quantum")  # type: ignore[arg-type]

    def test_auto_small_input(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        assert join_count(a, a) == 1


class TestJoinPairs:
    @pytest.mark.parametrize("method", ["nested", "sweep", "partition", "rtree"])
    def test_pairs_sorted_and_equal(self, two_rect_sets, method):
        a, b = two_rect_sets
        pairs = join_pairs(a, b, method=method)
        reference = join_pairs(a, b, method="nested")
        assert np.array_equal(pairs, reference)
        # Lexicographic sorting.
        keys = pairs[:, 0] * (len(b) + 1) + pairs[:, 1]
        assert np.all(np.diff(keys) > 0)


class TestActualSelectivity:
    def test_definition(self, two_rect_sets):
        a, b = two_rect_sets
        sel = actual_selectivity(a, b)
        assert sel == nested_loop_count(a, b) / (len(a) * len(b))

    def test_empty_inputs_zero(self):
        assert actual_selectivity(RectArray.empty(), RectArray.empty()) == 0.0

    def test_bounds(self, rng):
        a = random_rects(rng, 100)
        sel = actual_selectivity(a, a)
        assert 0.0 <= sel <= 1.0

    def test_full_overlap_is_one(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)] * 5)
        assert actual_selectivity(a, a) == 1.0
