"""Regression tests: the exact-join kernels honor cooperative deadlines.

The R002 lint rule (``repro.lint``) flagged the nested-loop and
plane-sweep loops as long kernel paths with no
:func:`repro.runtime.checkpoint`; these tests pin the fix — an expired
deadline now preempts both — and that the added checkpoints leave the
results bit-identical when no deadline is active.
"""

import numpy as np
import pytest

from repro.errors import EstimationTimeout
from repro.join import (
    nested_loop_count,
    nested_loop_pairs,
    plane_sweep_count,
    plane_sweep_pairs,
)
from repro.runtime import Deadline, runtime_scope
from tests.conftest import random_rects


@pytest.fixture
def pair(rng):
    return random_rects(rng, 120), random_rects(rng, 140)


class TestExpiredDeadlinePreempts:
    def test_nested_loop_count(self, pair):
        a, b = pair
        with runtime_scope(Deadline(0.0)):
            with pytest.raises(EstimationTimeout) as excinfo:
                nested_loop_count(a, b)
        assert excinfo.value.stage == "join.naive.block"

    def test_nested_loop_pairs(self, pair):
        a, b = pair
        with runtime_scope(Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                nested_loop_pairs(a, b)

    def test_plane_sweep_count(self, pair):
        a, b = pair
        with runtime_scope(Deadline(0.0)):
            with pytest.raises(EstimationTimeout) as excinfo:
                plane_sweep_count(a, b)
        assert excinfo.value.stage == "join.planesweep.events"

    def test_plane_sweep_pairs(self, pair):
        a, b = pair
        with runtime_scope(Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                plane_sweep_pairs(a, b)


class TestCheckpointsAreTransparent:
    """With no scope (or budget to spare) the results are unchanged."""

    def test_results_identical_under_generous_deadline(self, pair):
        a, b = pair
        bare_count = nested_loop_count(a, b)
        bare_pairs = plane_sweep_pairs(a, b)
        with runtime_scope(Deadline(60.0)):
            assert nested_loop_count(a, b) == bare_count
            assert np.array_equal(plane_sweep_pairs(a, b), bare_pairs)
        assert plane_sweep_count(a, b) == bare_count

    def test_empty_inputs_skip_checkpoints(self, pair):
        a, _ = pair
        empty = a[np.zeros(0, dtype=np.int64)]
        # Even with an expired deadline, the empty fast path answers: no
        # kernel loop runs, so no checkpoint fires.
        with runtime_scope(Deadline(0.0)):
            assert nested_loop_count(empty, a) == 0
