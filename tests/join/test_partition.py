"""Unit tests specific to the PBSM partition join."""

import numpy as np
import pytest

from repro.geometry import Rect, RectArray
from repro.join import (
    choose_grid_size,
    nested_loop_count,
    partition_join_count,
    partition_join_pairs,
)
from tests.conftest import random_rects


class TestChooseGridSize:
    def test_zero_items(self):
        assert choose_grid_size(0) == 1

    def test_monotone_in_n(self):
        sizes = [choose_grid_size(n) for n in (10, 1000, 100_000, 10_000_000)]
        assert sizes == sorted(sizes)

    def test_capped(self):
        assert choose_grid_size(10**12) == 512

    def test_target_per_cell(self):
        g = choose_grid_size(48_000, target_per_cell=48)
        assert g**2 * 48 >= 48_000 * 0.5


class TestReferencePointDedup:
    @pytest.mark.parametrize("grid", [1, 2, 3, 7, 16, 64])
    def test_count_independent_of_grid(self, two_rect_sets, grid):
        """The reference-point method must cancel replication exactly at
        every grid resolution."""
        a, b = two_rect_sets
        expected = nested_loop_count(a, b)
        assert partition_join_count(a, b, grid=grid) == expected

    @pytest.mark.parametrize("grid", [2, 5, 32])
    def test_pairs_independent_of_grid(self, two_rect_sets, grid):
        a, b = two_rect_sets
        expected = partition_join_pairs(a, b, grid=1)
        assert np.array_equal(partition_join_pairs(a, b, grid=grid), expected)

    def test_spanning_rects_counted_once(self):
        # One giant rect overlapping everything, replicated to all cells.
        big = RectArray.from_rects([Rect(0, 0, 1, 1)])
        small = RectArray.from_rects(
            [Rect(0.1, 0.1, 0.2, 0.2), Rect(0.7, 0.7, 0.9, 0.9)]
        )
        assert partition_join_count(big, small, grid=8) == 2

    def test_pair_on_cell_boundary(self):
        # Intersection reference point exactly on a grid line.
        a = RectArray.from_rects([Rect(0.0, 0.0, 0.5, 0.5)])
        b = RectArray.from_rects([Rect(0.5, 0.5, 1.0, 1.0)])
        for grid in (1, 2, 4):
            assert partition_join_count(a, b, grid=grid) == 1


class TestExplicitExtent:
    def test_custom_extent(self, two_rect_sets):
        a, b = two_rect_sets
        expected = nested_loop_count(a, b)
        assert partition_join_count(a, b, extent=Rect(-1, -1, 2, 2)) == expected

    def test_empty_input(self):
        assert partition_join_count(RectArray.empty(), RectArray.empty()) == 0

    def test_data_outside_declared_extent_still_counted(self, rng):
        # Clamping must not lose pairs even when the extent underscopes.
        a = random_rects(rng, 200)
        b = random_rects(rng, 200)
        expected = nested_loop_count(a, b)
        assert (
            partition_join_count(a, b, extent=Rect(0.25, 0.25, 0.75, 0.75)) == expected
        )
