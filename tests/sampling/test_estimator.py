"""Unit tests for the sampling join estimator."""

import pytest

from repro.datasets import SpatialDataset, make_clustered, make_uniform
from repro.geometry import RectArray
from repro.join import actual_selectivity
from repro.sampling import SamplingJoinEstimator


@pytest.fixture(scope="module")
def pair():
    a = make_uniform(4000, seed=10, mean_width=0.01, mean_height=0.01)
    b = make_clustered(4000, seed=11, mean_width=0.01, mean_height=0.01)
    truth = actual_selectivity(a.rects, b.rects)
    return a, b, truth


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            SamplingJoinEstimator("bogus")

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.1])
    def test_bad_fractions(self, fraction):
        with pytest.raises(ValueError):
            SamplingJoinEstimator("rswr", fraction, 0.5)
        with pytest.raises(ValueError):
            SamplingJoinEstimator("rswr", 0.5, fraction)

    def test_repr(self):
        est = SamplingJoinEstimator("rs", 0.1, 0.2)
        assert "rs" in repr(est) and "0.1" in repr(est)


class TestExactnessAtFullFraction:
    @pytest.mark.parametrize("method", ["rs", "ss"])
    def test_full_sample_is_exact(self, pair, method):
        """With 100%/100% deterministic samples, the 'estimate' is the
        actual selectivity (the paper's '100' sides)."""
        a, b, truth = pair
        est = SamplingJoinEstimator(method, 1.0, 1.0)
        assert est.estimate(a, b) == pytest.approx(truth, rel=1e-12)

    def test_one_sided_sampling(self, pair):
        a, b, truth = pair
        est = SamplingJoinEstimator("rs", 0.1, 1.0)
        assert est.estimate(a, b) == pytest.approx(truth, rel=0.5)


class TestAccuracy:
    @pytest.mark.parametrize("method", ["rs", "rswr", "ss"])
    def test_ten_percent_reasonable(self, pair, method):
        """The paper's headline: ~10% samples give usable accuracy."""
        a, b, truth = pair
        est = SamplingJoinEstimator(method, 0.1, 0.1, seed=5)
        assert est.estimate(a, b) == pytest.approx(truth, rel=0.5)

    def test_rswr_estimates_vary_with_seed(self, pair):
        a, b, _ = pair
        e1 = SamplingJoinEstimator("rswr", 0.05, 0.05, seed=1).estimate(a, b)
        e2 = SamplingJoinEstimator("rswr", 0.05, 0.05, seed=2).estimate(a, b)
        assert e1 != e2

    def test_deterministic_methods_stable(self, pair):
        a, b, _ = pair
        e1 = SamplingJoinEstimator("rs", 0.05, 0.05, seed=1).estimate(a, b)
        e2 = SamplingJoinEstimator("rs", 0.05, 0.05, seed=99).estimate(a, b)
        assert e1 == e2

    def test_larger_samples_generally_better(self, pair):
        """Across seeds, the mean error at 20% should beat 0.5%."""
        a, b, truth = pair

        def mean_error(fraction):
            errors = []
            for seed in range(5):
                est = SamplingJoinEstimator("rswr", fraction, fraction, seed=seed)
                errors.append(abs(est.estimate(a, b) - truth) / truth)
            return sum(errors) / len(errors)

        assert mean_error(0.2) < mean_error(0.005)


class TestDetailedOutput:
    def test_fields(self, pair):
        a, b, _ = pair
        detail = SamplingJoinEstimator("rs", 0.1, 0.2).estimate_detailed(a, b)
        assert detail.sample_size_1 == pytest.approx(400, abs=5)
        assert detail.sample_size_2 == pytest.approx(800, abs=5)
        assert detail.sample_pairs >= 0
        assert detail.selectivity == detail.sample_pairs / (
            detail.sample_size_1 * detail.sample_size_2
        )

    def test_timing_breakdown(self, pair):
        a, b, _ = pair
        timing = SamplingJoinEstimator("ss", 0.1, 0.1).estimate_detailed(a, b).timing
        assert timing.pick_seconds >= 0
        assert timing.build_seconds >= 0
        assert timing.join_seconds >= 0
        assert timing.total_seconds == pytest.approx(
            timing.pick_seconds + timing.build_seconds + timing.join_seconds
        )

    def test_empty_dataset(self):
        empty = SpatialDataset("e", RectArray.empty())
        other = make_uniform(10, seed=0)
        detail = SamplingJoinEstimator("rswr").estimate_detailed(empty, other)
        assert detail.selectivity == 0.0
        assert detail.sample_size_1 == 0


class TestSSCostStructure:
    def test_ss_pick_slower_than_rs(self, pair):
        """SS pays for the Hilbert sort — the paper's reason to avoid it."""
        a, b, _ = pair
        rs_time = SamplingJoinEstimator("rs", 0.1, 0.1).estimate_detailed(a, b).timing
        ss_time = SamplingJoinEstimator("ss", 0.1, 0.1).estimate_detailed(a, b).timing
        assert ss_time.pick_seconds > rs_time.pick_seconds


class TestConfidenceIntervals:
    def test_interval_covers_truth_usually(self, pair):
        a, b, truth = pair
        est = SamplingJoinEstimator("rswr", 0.15, 0.15, seed=3)
        ci = est.estimate_with_confidence(a, b, repeats=12)
        assert ci.lower <= ci.mean <= ci.upper
        assert ci.repeats == 12
        # With z=1.96 and 12 repeats the interval should usually cover.
        assert ci.contains(truth)

    def test_interval_shrinks_with_sample_size(self, pair):
        a, b, _ = pair
        wide = SamplingJoinEstimator("rswr", 0.02, 0.02, seed=1)
        narrow = SamplingJoinEstimator("rswr", 0.3, 0.3, seed=1)
        ci_wide = wide.estimate_with_confidence(a, b, repeats=8)
        ci_narrow = narrow.estimate_with_confidence(a, b, repeats=8)
        assert ci_narrow.relative_halfwidth < ci_wide.relative_halfwidth

    def test_deterministic_methods_rejected(self, pair):
        a, b, _ = pair
        with pytest.raises(ValueError, match="deterministic"):
            SamplingJoinEstimator("rs").estimate_with_confidence(a, b)

    def test_too_few_repeats_rejected(self, pair):
        a, b, _ = pair
        with pytest.raises(ValueError, match="repeats"):
            SamplingJoinEstimator("rswr").estimate_with_confidence(a, b, repeats=1)

    def test_lower_bound_nonnegative(self, pair):
        a, b, _ = pair
        ci = SamplingJoinEstimator("rswr", 0.01, 0.01, seed=2).estimate_with_confidence(
            a, b, repeats=5
        )
        assert ci.lower >= 0.0
