"""Unit tests for the three sample pickers (RS, RSWR, SS)."""

import numpy as np
import pytest

from repro.datasets import make_uniform
from repro.sampling import (
    SAMPLING_METHODS,
    pick_sample_indices,
    random_wr_sample_indices,
    regular_sample_indices,
    sample_size_for_fraction,
    sorted_sample_indices,
)
from repro.hilbert import hilbert_keys_for_points


class TestSampleSize:
    def test_basic(self):
        assert sample_size_for_fraction(1000, 0.1) == 100

    def test_rounding(self):
        assert sample_size_for_fraction(999, 0.001) == 1

    def test_at_least_one(self):
        assert sample_size_for_fraction(3, 0.01) == 1

    def test_empty_dataset(self):
        assert sample_size_for_fraction(0, 0.5) == 0

    def test_full_fraction(self):
        assert sample_size_for_fraction(123, 1.0) == 123

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(ValueError):
            sample_size_for_fraction(10, fraction)


class TestRegularSampling:
    def test_every_kth(self):
        idx = regular_sample_indices(100, 0.1)
        assert idx.tolist() == list(range(0, 100, 10))

    def test_full_fraction_identity(self):
        assert regular_sample_indices(50, 1.0).tolist() == list(range(50))

    def test_deterministic(self):
        assert np.array_equal(
            regular_sample_indices(1000, 0.05), regular_sample_indices(1000, 0.05)
        )

    def test_size_close_to_target(self):
        for n, frac in [(1000, 0.1), (997, 0.03), (10, 0.5)]:
            idx = regular_sample_indices(n, frac)
            target = sample_size_for_fraction(n, frac)
            assert abs(len(idx) - target) <= max(1, 0.1 * target)

    def test_indices_valid_and_unique(self):
        idx = regular_sample_indices(500, 0.07)
        assert len(set(idx.tolist())) == len(idx)
        assert idx.min() >= 0 and idx.max() < 500

    def test_empty_dataset(self):
        assert regular_sample_indices(0, 0.1).shape == (0,)


class TestRandomSamplingWithReplacement:
    def test_size(self, rng):
        idx = random_wr_sample_indices(1000, 0.1, rng)
        assert len(idx) == 100

    def test_bounds(self, rng):
        idx = random_wr_sample_indices(50, 0.9, rng)
        assert idx.min() >= 0 and idx.max() < 50

    def test_replacement_possible(self):
        rng = np.random.default_rng(0)
        idx = random_wr_sample_indices(10, 1.0, rng)
        # With replacement, 10 draws from 10 items almost surely repeat.
        assert len(set(idx.tolist())) < 10

    def test_reproducible_with_seeded_rng(self):
        a = random_wr_sample_indices(100, 0.3, np.random.default_rng(42))
        b = random_wr_sample_indices(100, 0.3, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_roughly_uniform(self):
        rng = np.random.default_rng(1)
        idx = random_wr_sample_indices(10, 1.0, rng)
        draws = np.concatenate(
            [random_wr_sample_indices(10, 1.0, rng) for _ in range(2000)]
        )
        counts = np.bincount(draws, minlength=10)
        assert counts.min() > 0.7 * counts.mean()


class TestSortedSampling:
    def test_indices_follow_hilbert_order(self):
        ds = make_uniform(500, seed=0)
        idx = sorted_sample_indices(ds, 0.1)
        cx, cy = ds.rects.centers()
        keys = hilbert_keys_for_points(
            cx, cy, extent_min=(0, 0), extent_size=(1, 1)
        )
        sampled_keys = keys[idx].astype(np.int64)
        assert np.all(np.diff(sampled_keys) >= 0)

    def test_size(self):
        ds = make_uniform(1000, seed=0)
        assert len(sorted_sample_indices(ds, 0.05)) == pytest.approx(50, abs=5)

    def test_deterministic(self):
        ds = make_uniform(300, seed=0)
        assert np.array_equal(sorted_sample_indices(ds, 0.1), sorted_sample_indices(ds, 0.1))

    def test_spatial_coverage(self):
        """Hilbert-ordered regular sampling spreads over the extent."""
        ds = make_uniform(2000, seed=0)
        idx = sorted_sample_indices(ds, 0.05)
        cx, _ = ds.rects.centers()
        sampled = cx[idx]
        assert sampled.min() < 0.2 and sampled.max() > 0.8


class TestDispatch:
    def test_methods_tuple(self):
        assert SAMPLING_METHODS == ("rs", "rswr", "ss")

    @pytest.mark.parametrize("method", SAMPLING_METHODS)
    def test_dispatch_works(self, method, rng):
        ds = make_uniform(200, seed=0)
        idx = pick_sample_indices(ds, 0.1, method, rng)
        assert 1 <= len(idx) <= 40
        assert idx.min() >= 0 and idx.max() < 200

    def test_unknown_method(self, rng):
        ds = make_uniform(10, seed=0)
        with pytest.raises(ValueError, match="unknown sampling method"):
            pick_sample_indices(ds, 0.1, "bogus", rng)
