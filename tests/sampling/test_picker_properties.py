"""Property-based tests for the sample pickers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datasets import make_uniform
from repro.sampling import (
    random_wr_sample_indices,
    regular_sample_indices,
    sample_size_for_fraction,
    sorted_sample_indices,
)

sizes = st.integers(min_value=1, max_value=5000)
fractions = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False)


@given(sizes, fractions)
def test_regular_indices_valid_and_strictly_increasing(n, fraction):
    idx = regular_sample_indices(n, fraction)
    assert len(idx) >= 1
    assert idx[0] == 0
    assert idx[-1] < n
    assert np.all(np.diff(idx) > 0)


@given(sizes, fractions)
def test_regular_spacing_constant(n, fraction):
    idx = regular_sample_indices(n, fraction)
    if len(idx) > 1:
        gaps = np.diff(idx)
        assert gaps.min() == gaps.max()  # every k-th exactly


@given(sizes, fractions)
def test_regular_size_close_to_target(n, fraction):
    idx = regular_sample_indices(n, fraction)
    target = sample_size_for_fraction(n, fraction)
    # RS takes ceil(n / ceil(n / target)) items; never more than ~2x off.
    assert target / 2 <= len(idx) <= 2 * target + 1


@given(sizes, fractions, st.integers(min_value=0, max_value=2**31))
def test_rswr_bounds_and_size(n, fraction, seed):
    rng = np.random.default_rng(seed)
    idx = random_wr_sample_indices(n, fraction, rng)
    assert len(idx) == sample_size_for_fraction(n, fraction)
    if len(idx):
        assert idx.min() >= 0 and idx.max() < n


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=500), fractions)
def test_sorted_sampling_unique_indices(n, fraction):
    ds = make_uniform(n, seed=n)
    idx = sorted_sample_indices(ds, fraction)
    assert len(np.unique(idx)) == len(idx)
    assert idx.min() >= 0 and idx.max() < n
