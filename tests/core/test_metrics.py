"""Unit tests for the evaluation metrics."""

import math
import time

import pytest

from repro.core import MetricAccumulator, Timer, ratio_pct, relative_error_pct


class TestRelativeError:
    def test_basic(self):
        assert relative_error_pct(110, 100) == pytest.approx(10.0)
        assert relative_error_pct(90, 100) == pytest.approx(10.0)

    def test_exact(self):
        assert relative_error_pct(5, 5) == 0.0

    def test_zero_actual_zero_estimate(self):
        assert relative_error_pct(0, 0) == 0.0

    def test_zero_actual_nonzero_estimate(self):
        assert relative_error_pct(1e-9, 0) == math.inf

    def test_negative_actual(self):
        assert relative_error_pct(-2, -1) == pytest.approx(100.0)

    def test_symmetric_in_magnitude_not_direction(self):
        assert relative_error_pct(200, 100) == relative_error_pct(0, 100) * 1.0


class TestRatioPct:
    def test_basic(self):
        assert ratio_pct(1, 4) == 25.0

    def test_zero_whole(self):
        assert ratio_pct(0, 0) == 0.0
        assert ratio_pct(1, 0) == math.inf

    def test_over_100(self):
        assert ratio_pct(5, 1) == 500.0


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.seconds < 1.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.seconds
        with t:
            time.sleep(0.01)
        assert t.seconds > first


class TestMetricAccumulator:
    def test_empty(self):
        acc = MetricAccumulator()
        assert acc.count == 0
        assert acc.mean == 0.0

    def test_stats(self):
        acc = MetricAccumulator()
        for v in (1.0, 3.0, 5.0):
            acc.add(v)
        assert acc.count == 3
        assert acc.mean == 3.0
        assert acc.minimum == 1.0
        assert acc.maximum == 5.0
