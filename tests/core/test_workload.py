"""Unit tests for workload descriptors."""

from repro.core import FIGURE6_COMBOS, FIGURE6_METHODS, FIGURE7_LEVELS, SampleCombo


class TestSampleCombo:
    def test_fractions(self):
        combo = SampleCombo(0.1, 100)
        assert combo.fraction1 == 0.001
        assert combo.fraction2 == 1.0

    def test_label(self):
        assert SampleCombo(0.1, 100).label == "0.1/100"
        assert SampleCombo(10, 10).label == "10/10"
        assert SampleCombo(1, 1).label == "1/1"


class TestFigureConstants:
    def test_nine_combos_in_paper_order(self):
        labels = [c.label for c in FIGURE6_COMBOS]
        assert labels == [
            "0.1/0.1", "1/1", "10/10",
            "0.1/100", "100/0.1", "1/100", "100/1", "10/100", "100/10",
        ]

    def test_methods(self):
        assert FIGURE6_METHODS == ("rswr", "rs", "ss")

    def test_levels(self):
        assert FIGURE7_LEVELS == tuple(range(10))
