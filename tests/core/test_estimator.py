"""Unit tests for the unified estimator interface and registry."""

import pytest

from repro.core import (
    ESTIMATOR_KINDS,
    BasicGHEstimator,
    GHEstimator,
    ParametricEstimator,
    PHEstimator,
    SamplingEstimatorAdapter,
    create_estimator,
)
from repro.datasets import SpatialDataset, make_clustered, make_uniform
from repro.geometry import Rect
from repro.join import actual_selectivity
from tests.conftest import random_rects


@pytest.fixture(scope="module")
def pair():
    a = make_uniform(2000, seed=20, mean_width=0.01, mean_height=0.01)
    b = make_clustered(2000, seed=21, mean_width=0.01, mean_height=0.01)
    return a, b, actual_selectivity(a.rects, b.rects)


ALL_ESTIMATORS = [
    ParametricEstimator(),
    PHEstimator(level=4),
    GHEstimator(level=5),
    BasicGHEstimator(level=5),
    SamplingEstimatorAdapter(method="rswr", fraction1=0.3, fraction2=0.3, seed=0),
]


@pytest.mark.parametrize("estimator", ALL_ESTIMATORS, ids=lambda e: e.name)
class TestCommonInterface:
    def test_estimate_nonnegative(self, estimator, pair):
        a, b, _ = pair
        assert estimator.estimate(a, b) >= 0.0

    def test_estimate_pairs_consistent(self, estimator, pair):
        a, b, _ = pair
        sel = estimator.estimate(a, b)
        # Sampling estimators are stochastic between calls unless seeded;
        # re-seedable ones here are deterministic, so the product holds.
        assert estimator.estimate_pairs(a, b) == pytest.approx(sel * len(a) * len(b))

    def test_in_right_ballpark(self, estimator, pair):
        a, b, truth = pair
        # Basic GH intentionally overcounts at moderate levels (Figure 4);
        # give it a generous band and hold the others to a tight one.
        tolerance = 50.0 if estimator.name == "gh_basic" else 2.0
        assert estimator.estimate(a, b) == pytest.approx(truth, rel=tolerance)


class TestPreparedTwoPhase:
    @pytest.mark.parametrize(
        "estimator", [ParametricEstimator(), PHEstimator(3), GHEstimator(4)],
        ids=lambda e: e.name,
    )
    def test_prepare_combine_equals_estimate(self, estimator, pair):
        a, b, _ = pair
        one_shot = estimator.estimate(a, b)
        prep_a = estimator.prepare(a, extent=a.extent)
        prep_b = estimator.prepare(b, extent=b.extent)
        assert estimator.combine(prep_a, prep_b) == pytest.approx(one_shot)

    def test_extent_mismatch_rejected(self, rng):
        a = SpatialDataset("a", random_rects(rng, 10), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 10), Rect(0, 0, 2, 2))
        with pytest.raises(ValueError, match="common extent"):
            GHEstimator(2).estimate(a, b)

    def test_parametric_prepare_respects_extent_override(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 50), Rect.unit())
        wide = ParametricEstimator().prepare(ds, extent=Rect(-1, -1, 2, 2))
        assert wide.extent_area == 9.0


class TestRegistry:
    def test_kinds(self):
        # "resilient" joins the registry when repro.service is imported
        # (which importing the top-level ``repro`` package does).
        assert set(ESTIMATOR_KINDS) == {
            "parametric", "ph", "gh", "gh_basic", "sampling", "resilient",
        }

    def test_create_each_kind(self):
        assert isinstance(create_estimator("parametric"), ParametricEstimator)
        assert isinstance(create_estimator("ph", level=3), PHEstimator)
        assert isinstance(create_estimator("gh", level=6), GHEstimator)
        assert isinstance(create_estimator("gh_basic"), BasicGHEstimator)
        assert isinstance(
            create_estimator("sampling", method="rs"), SamplingEstimatorAdapter
        )

    def test_kwargs_forwarded(self):
        assert create_estimator("gh", level=9).level == 9

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown estimator kind"):
            create_estimator("oracle")

    def test_reprs(self):
        assert "level=3" in repr(PHEstimator(3))
        assert "level=6" in repr(GHEstimator(6))
        assert "level=2" in repr(BasicGHEstimator(2))
        assert "rswr" in repr(SamplingEstimatorAdapter(method="rswr"))


class TestAccuracyOrdering:
    def test_gh_beats_parametric_on_skew(self, pair):
        a, b, truth = pair
        gh_err = abs(GHEstimator(6).estimate(a, b) - truth)
        par_err = abs(ParametricEstimator().estimate(a, b) - truth)
        assert gh_err < par_err

    def test_revised_gh_beats_basic(self, pair):
        a, b, truth = pair
        revised = abs(GHEstimator(4).estimate(a, b) - truth)
        basic = abs(BasicGHEstimator(4).estimate(a, b) - truth)
        assert revised < basic
