"""Degenerate-input coverage across every estimator kind (ISSUE 1).

Every registry estimator must survive — with defined semantics, not
crashes — the edge inputs a production service will inevitably see:
empty datasets, single rectangles, zero-area rectangles (points and
segments), and rectangles hugging the extent boundary.
"""

import math

import numpy as np
import pytest

from repro.core import ESTIMATOR_KINDS, create_estimator
from repro.datasets import SpatialDataset
from repro.geometry import Rect, RectArray
from tests.conftest import random_rects

#: Constructor arguments making each kind fast and deterministic.
KIND_KWARGS = {
    "parametric": {},
    "ph": {"level": 3},
    "gh": {"level": 3},
    "gh_basic": {"level": 3},
    "sampling": {"method": "rs", "fraction1": 1.0, "fraction2": 1.0},
    "resilient": {"primary": "gh", "level": 3},
}


def make_estimator(kind):
    """Instantiate a registry kind with its fast test configuration."""
    return create_estimator(kind, **KIND_KWARGS[kind])


def test_kwargs_cover_registry():
    # If a new kind joins the registry this file must learn about it.
    assert set(KIND_KWARGS) == set(ESTIMATOR_KINDS)


EMPTY = SpatialDataset("empty", RectArray.empty(), Rect.unit())
SINGLE = SpatialDataset(
    "single", RectArray.from_coords([[0.4, 0.4, 0.6, 0.6]]), Rect.unit()
)


@pytest.mark.parametrize("kind", sorted(ESTIMATOR_KINDS))
class TestEmptyDatasets:
    def test_both_empty(self, kind):
        assert make_estimator(kind).estimate(EMPTY, EMPTY) == 0.0

    def test_one_empty(self, kind):
        assert make_estimator(kind).estimate(EMPTY, SINGLE) == 0.0
        assert make_estimator(kind).estimate(SINGLE, EMPTY) == 0.0

    def test_pairs_zero(self, kind):
        assert make_estimator(kind).estimate_pairs(EMPTY, SINGLE) == 0.0


@pytest.mark.parametrize("kind", sorted(ESTIMATOR_KINDS))
class TestSingleRect:
    def test_identical_singles(self, kind):
        value = make_estimator(kind).estimate(SINGLE, SINGLE)
        assert math.isfinite(value) and value >= 0.0

    def test_disjoint_singles(self, kind):
        other = SpatialDataset(
            "other", RectArray.from_coords([[0.0, 0.0, 0.1, 0.1]]), Rect.unit()
        )
        value = make_estimator(kind).estimate(SINGLE, other)
        assert math.isfinite(value) and value >= 0.0


@pytest.mark.parametrize("kind", sorted(ESTIMATOR_KINDS))
class TestZeroAreaRects:
    def test_point_datasets(self, kind, rng):
        # Pure point data (the paper's SP dataset is points).
        x = rng.uniform(0.05, 0.95, size=40)
        y = rng.uniform(0.05, 0.95, size=40)
        points = SpatialDataset("pts", RectArray.from_points(x, y), Rect.unit())
        boxes = SpatialDataset("boxes", random_rects(rng, 40), Rect.unit())
        value = make_estimator(kind).estimate(points, boxes)
        assert math.isfinite(value) and value >= 0.0

    def test_segment_datasets(self, kind, rng):
        # Zero-height horizontal segments (degenerate rectangles).
        x0 = rng.uniform(0.0, 0.8, size=30)
        y = rng.uniform(0.05, 0.95, size=30)
        segments = SpatialDataset(
            "segs", RectArray(x0, y, x0 + 0.1, y), Rect.unit()
        )
        value = make_estimator(kind).estimate(segments, segments)
        assert math.isfinite(value) and value >= 0.0


@pytest.mark.parametrize("kind", sorted(ESTIMATOR_KINDS))
class TestExtentBoundaryRects:
    def test_rects_on_every_extent_edge(self, kind):
        # Rectangles flush with each extent edge, plus one covering the
        # whole universe: grid binning must keep the far edges in range.
        coords = [
            [0.0, 0.0, 0.2, 0.2],  # bottom-left corner
            [0.8, 0.8, 1.0, 1.0],  # top-right corner
            [0.0, 0.4, 0.1, 0.6],  # left edge
            [0.9, 0.4, 1.0, 0.6],  # right edge
            [0.4, 0.0, 0.6, 0.1],  # bottom edge
            [0.4, 0.9, 0.6, 1.0],  # top edge
            [0.0, 0.0, 1.0, 1.0],  # the full universe
        ]
        boundary = SpatialDataset(
            "edges", RectArray.from_coords(coords), Rect.unit()
        )
        value = make_estimator(kind).estimate(boundary, boundary)
        assert math.isfinite(value) and value >= 0.0

    def test_corner_points(self, kind):
        corners = SpatialDataset(
            "corners",
            RectArray.from_points(
                np.array([0.0, 1.0, 0.0, 1.0]), np.array([0.0, 0.0, 1.0, 1.0])
            ),
            Rect.unit(),
        )
        value = make_estimator(kind).estimate(corners, SINGLE)
        assert math.isfinite(value) and value >= 0.0
