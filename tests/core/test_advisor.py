"""Unit tests for the gridding-level advisors."""

import pytest

from repro.core import calibrate_level, level_for_budget
from repro.datasets import make_clustered, make_uniform
from repro.histograms import GHHistogram, MAX_LEVEL
from repro.join import actual_selectivity


class TestLevelForBudget:
    def test_budget_respected_gh(self):
        for budget in (1 << 10, 1 << 16, 1 << 22):
            level = level_for_budget(budget, scheme="gh")
            assert 8 * 4 * 4**level <= budget
            if level < MAX_LEVEL:
                assert 8 * 4 * 4 ** (level + 1) > budget

    def test_ph_needs_double(self):
        budget = 8 * 8 * 4**5  # exactly a level-5 PH file
        assert level_for_budget(budget, scheme="ph") == 5
        assert level_for_budget(budget, scheme="gh") >= 5

    def test_size_formula_matches_histograms(self, rng):
        from tests.conftest import random_rects
        from repro.datasets import SpatialDataset

        ds = SpatialDataset("d", random_rects(rng, 10))
        level = level_for_budget(100_000, scheme="gh")
        hist = GHHistogram.build(ds, level)
        assert hist.size_bytes <= 100_000

    def test_capped_at_max_level(self):
        assert level_for_budget(1 << 62, scheme="gh") == MAX_LEVEL

    def test_too_small_budget_rejected(self):
        with pytest.raises(ValueError, match="cannot hold"):
            level_for_budget(8, scheme="gh")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            level_for_budget(1 << 20, scheme="wavelet")


class TestCalibrateLevel:
    @pytest.fixture(scope="class")
    def skewed_pair(self):
        a = make_clustered(4000, seed=100, spread=0.06)
        b = make_clustered(4000, seed=101, spread=0.06)
        return a, b

    def test_stabilized_estimate_is_accurate(self, skewed_pair):
        a, b = skewed_pair
        result = calibrate_level(a, b, tolerance=0.02)
        truth = actual_selectivity(a.rects, b.rects)
        assert result.selectivity == pytest.approx(truth, rel=0.15)
        assert result.last_relative_change <= 0.02 or result.level == 9

    def test_uniform_data_stabilizes_early(self):
        a = make_uniform(3000, seed=102, mean_width=0.01, mean_height=0.01)
        b = make_uniform(3000, seed=103, mean_width=0.01, mean_height=0.01)
        result = calibrate_level(a, b, tolerance=0.02, min_level=2)
        assert result.level <= 4  # uniformity => convergence at once

    def test_trace_recorded(self, skewed_pair):
        a, b = skewed_pair
        result = calibrate_level(a, b, min_level=2, max_level=6, tolerance=1e-9)
        # With an impossible tolerance the walk reaches max_level.
        assert result.level == 6
        assert len(result.trace) == 5

    def test_tighter_tolerance_never_lowers_level(self, skewed_pair):
        a, b = skewed_pair
        loose = calibrate_level(a, b, tolerance=0.5)
        tight = calibrate_level(a, b, tolerance=0.01)
        assert tight.level >= loose.level

    def test_validation(self, skewed_pair):
        a, b = skewed_pair
        with pytest.raises(ValueError):
            calibrate_level(a, b, tolerance=0.0)
        with pytest.raises(ValueError):
            calibrate_level(a, b, min_level=5, max_level=3)

    def test_extent_mismatch(self):
        from repro.geometry import Rect

        a = make_uniform(100, seed=1)
        b = make_uniform(100, seed=2, extent=Rect(0, 0, 2, 2))
        with pytest.raises(ValueError, match="common extent"):
            calibrate_level(a, b)
