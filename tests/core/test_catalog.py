"""Unit tests for the statistics catalog."""

import pytest

from repro.core import GHEstimator, ParametricEstimator, PHEstimator, StatisticsCatalog
from repro.core.catalog import catalog_for
from repro.datasets import make_clustered, make_uniform
from repro.geometry import Rect
from repro.histograms import gh_selectivity


@pytest.fixture
def datasets():
    a = make_uniform(800, seed=30, name="A")
    b = make_clustered(800, seed=31, name="B")
    c = make_uniform(500, seed=32, name="C")
    return a, b, c


class TestRegistration:
    def test_register_and_lookup(self, datasets):
        a, b, _ = datasets
        catalog = StatisticsCatalog()
        catalog.register(a)
        catalog.register(b)
        assert catalog.names == ["A", "B"]
        assert catalog.dataset("A") is a

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="not registered"):
            StatisticsCatalog().dataset("nope")

    def test_extent_of_empty_catalog(self):
        with pytest.raises(ValueError):
            StatisticsCatalog().extent

    def test_extent_grows_to_cover_all(self, datasets):
        a, _, _ = datasets
        catalog = StatisticsCatalog()
        catalog.register(a)
        wide = make_uniform(10, seed=1, extent=Rect(-2, -2, 3, 3), name="W")
        catalog.register(wide)
        assert catalog.extent.contains_rect(Rect.unit())
        assert catalog.extent.contains_rect(Rect(-2, -2, 3, 3))


class TestEstimation:
    def test_matches_direct_gh(self, datasets):
        a, b, _ = datasets
        catalog = StatisticsCatalog(GHEstimator(level=5))
        catalog.register(a)
        catalog.register(b)
        assert catalog.estimate("A", "B") == pytest.approx(gh_selectivity(a, b, 5))

    def test_estimate_pairs(self, datasets):
        a, b, _ = datasets
        catalog = StatisticsCatalog(GHEstimator(level=4))
        catalog.register(a)
        catalog.register(b)
        assert catalog.estimate_pairs("A", "B") == pytest.approx(
            catalog.estimate("A", "B") * len(a) * len(b)
        )

    def test_summaries_cached(self, datasets):
        a, b, _ = datasets
        catalog = StatisticsCatalog(GHEstimator(level=4))
        catalog.register(a)
        catalog.register(b)
        first = catalog.summary_for("A")
        assert catalog.summary_for("A") is first

    def test_cache_invalidated_on_extent_growth(self, datasets):
        a, _, _ = datasets
        catalog = StatisticsCatalog(GHEstimator(level=3))
        catalog.register(a)
        before = catalog.summary_for("A")
        wide = make_uniform(10, seed=1, extent=Rect(-2, -2, 3, 3), name="W")
        catalog.register(wide)
        after = catalog.summary_for("A")
        assert after is not before
        assert after.grid.extent != before.grid.extent

    def test_parametric_estimator_works(self, datasets):
        a, b, _ = datasets
        catalog = StatisticsCatalog(ParametricEstimator())
        catalog.register(a)
        catalog.register(b)
        assert catalog.estimate("A", "B") > 0

    def test_default_estimator_is_gh7(self):
        catalog = StatisticsCatalog()
        assert isinstance(catalog.estimator, GHEstimator)
        assert catalog.estimator.level == 7


class TestPersistence:
    def test_histograms_spill_to_disk(self, datasets, tmp_path):
        a, b, _ = datasets
        catalog = StatisticsCatalog(GHEstimator(level=3), directory=tmp_path)
        catalog.register(a)
        catalog.register(b)
        catalog.estimate("A", "B")
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 2

    def test_reload_from_disk(self, datasets, tmp_path):
        a, b, _ = datasets
        first = StatisticsCatalog(GHEstimator(level=3), directory=tmp_path)
        first.register(a)
        first.register(b)
        expected = first.estimate("A", "B")

        second = StatisticsCatalog(GHEstimator(level=3), directory=tmp_path)
        second.register(a)
        second.register(b)
        assert second.estimate("A", "B") == expected

    def test_ph_persists_too(self, datasets, tmp_path):
        a, b, _ = datasets
        catalog = StatisticsCatalog(PHEstimator(level=3), directory=tmp_path)
        catalog.register(a)
        catalog.register(b)
        catalog.estimate("A", "B")
        assert list(tmp_path.glob("*.ph-3.npz"))


class TestCatalogFor:
    def test_builds_shared_extent(self, datasets):
        a, b, c = datasets
        catalog = catalog_for([a, b, c])
        assert catalog.names == ["A", "B", "C"]
        assert catalog.estimate("A", "C") >= 0

    def test_empty_list(self):
        catalog = catalog_for([])
        assert catalog.names == []
