"""Unit tests for all-pairs selectivity estimation."""

import pytest

from repro.core import GHEstimator, ParametricEstimator, pairwise_selectivities
from repro.core.optimizer import optimize_join_order
from repro.datasets import make_clustered, make_uniform
from repro.geometry import Rect


@pytest.fixture(scope="module")
def three_datasets():
    return [
        make_uniform(600, seed=140, name="A"),
        make_clustered(600, seed=141, name="B"),
        make_uniform(400, seed=142, name="C"),
    ]


class TestPairwiseSelectivities:
    def test_all_pairs_present(self, three_datasets):
        matrix = pairwise_selectivities(three_datasets, GHEstimator(4))
        assert set(matrix) == {("A", "B"), ("A", "C"), ("B", "C")}

    def test_keys_sorted(self, three_datasets):
        matrix = pairwise_selectivities(three_datasets, GHEstimator(3))
        assert all(a <= b for a, b in matrix)

    def test_matches_direct_estimates(self, three_datasets):
        matrix = pairwise_selectivities(three_datasets, GHEstimator(4))
        a, b, _ = three_datasets
        direct = GHEstimator(4).estimate(a, b)
        assert matrix[("A", "B")] == pytest.approx(direct)

    def test_default_estimator_is_gh7(self, three_datasets):
        matrix = pairwise_selectivities(three_datasets)
        explicit = pairwise_selectivities(three_datasets, GHEstimator(7))
        assert matrix == explicit

    def test_parametric_works(self, three_datasets):
        matrix = pairwise_selectivities(three_datasets, ParametricEstimator())
        assert all(v >= 0 for v in matrix.values())

    def test_mixed_extents_unified(self):
        wide = make_uniform(200, seed=143, extent=Rect(0, 0, 2, 2), name="W")
        unit = make_uniform(200, seed=144, name="U")
        matrix = pairwise_selectivities([wide, unit], GHEstimator(3))
        assert ("U", "W") in matrix

    def test_duplicate_names_rejected(self, three_datasets):
        a = three_datasets[0]
        with pytest.raises(ValueError, match="unique"):
            pairwise_selectivities([a, a])

    def test_single_dataset_rejected(self, three_datasets):
        with pytest.raises(ValueError, match="two datasets"):
            pairwise_selectivities(three_datasets[:1])

    def test_feeds_the_optimizer(self, three_datasets):
        matrix = pairwise_selectivities(three_datasets, GHEstimator(4))
        sizes = {ds.name: len(ds) for ds in three_datasets}
        plan = optimize_join_order(sizes, matrix)
        assert set(plan.order) == {"A", "B", "C"}
