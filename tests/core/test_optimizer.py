"""Unit tests for the join-order optimizer."""

import pytest

from repro.core import optimize_join_order, plan_cardinality


class TestPlanCardinality:
    def test_two_way(self):
        sizes = {"A": 100, "B": 200}
        sels = {("A", "B"): 0.01}
        assert plan_cardinality(["A", "B"], sizes, sels) == pytest.approx(200.0)

    def test_missing_edge_is_cartesian(self):
        sizes = {"A": 10, "B": 10}
        assert plan_cardinality(["A", "B"], sizes, {}) == 100.0

    def test_three_way_multiplies_edges(self):
        sizes = {"A": 10, "B": 10, "C": 10}
        sels = {("A", "B"): 0.1, ("B", "C"): 0.5}
        assert plan_cardinality(["A", "B", "C"], sizes, sels) == pytest.approx(50.0)

    def test_edge_key_order_insensitive(self):
        sizes = {"A": 10, "B": 20}
        forward = plan_cardinality(["A", "B"], sizes, {("A", "B"): 0.3})
        backward = plan_cardinality(["B", "A"], sizes, {("B", "A"): 0.3})
        assert forward == backward


class TestOptimizeJoinOrder:
    def test_single_dataset(self):
        plan = optimize_join_order({"A": 42}, {})
        assert plan.order == ("A",)
        assert plan.cardinality == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            optimize_join_order({}, {})

    def test_picks_selective_join_first(self):
        """Classic scenario: start from the most selective pair."""
        sizes = {"A": 1000, "B": 1000, "C": 1000}
        sels = {
            ("A", "B"): 1e-6,  # tiny intermediate
            ("B", "C"): 1e-1,  # huge intermediate
            ("A", "C"): 1e-1,
        }
        plan = optimize_join_order(sizes, sels)
        assert set(plan.order[:2]) == {"A", "B"}

    def test_avoids_cartesian_when_connected_exists(self):
        sizes = {"A": 10, "B": 10, "C": 10}
        sels = {("A", "B"): 0.5, ("B", "C"): 0.5}
        plan = optimize_join_order(sizes, sels)
        # C must not be joined before B is in (no A-C edge).
        order = plan.order
        assert order.index("C") > order.index("B") or order.index("A") > order.index("B")

    def test_disconnected_graph_still_plans(self):
        sizes = {"A": 10, "B": 10, "C": 5, "D": 5}
        sels = {("A", "B"): 0.1, ("C", "D"): 0.1}
        plan = optimize_join_order(sizes, sels)
        assert set(plan.order) == {"A", "B", "C", "D"}

    def test_cost_counts_intermediates(self):
        sizes = {"A": 100, "B": 100}
        sels = {("A", "B"): 0.01}
        plan = optimize_join_order(sizes, sels)
        assert plan.cost == pytest.approx(100.0)  # the single (final) result

    def test_final_cardinality_independent_of_order(self):
        sizes = {"A": 50, "B": 60, "C": 70}
        sels = {("A", "B"): 0.1, ("B", "C"): 0.2, ("A", "C"): 0.05}
        plan = optimize_join_order(sizes, sels)
        assert plan.cardinality == pytest.approx(
            plan_cardinality(("A", "B", "C"), sizes, sels)
        )

    def test_better_estimates_better_plan(self):
        """A wildly wrong selectivity changes the chosen order — the
        reason estimation accuracy matters to an optimizer."""
        sizes = {"A": 10_000, "B": 10_000, "C": 10_000}
        true_sels = {("A", "B"): 1e-7, ("B", "C"): 1e-2, ("A", "C"): 1e-2}
        bad_sels = {("A", "B"): 1e-2, ("B", "C"): 1e-7, ("A", "C"): 1e-2}
        good_plan = optimize_join_order(sizes, true_sels)
        bad_plan = optimize_join_order(sizes, bad_sels)
        assert set(good_plan.order[:2]) == {"A", "B"}
        assert set(bad_plan.order[:2]) == {"B", "C"}
