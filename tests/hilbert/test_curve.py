"""Unit tests for the Hilbert curve implementation."""

import numpy as np
import pytest

from repro.hilbert import (
    DEFAULT_ORDER,
    hilbert_index,
    hilbert_index_vectorized,
    hilbert_keys_for_points,
    hilbert_point,
    hilbert_sort_order,
)


class TestScalarCurve:
    def test_order1_visits_all_four_cells(self):
        values = {hilbert_index(1, x, y) for x in range(2) for y in range(2)}
        assert values == {0, 1, 2, 3}

    def test_order1_canonical_layout(self):
        # The classic U-shape: (0,0)->0, (0,1)->1, (1,1)->2, (1,0)->3.
        assert hilbert_index(1, 0, 0) == 0
        assert hilbert_index(1, 0, 1) == 1
        assert hilbert_index(1, 1, 1) == 2
        assert hilbert_index(1, 1, 0) == 3

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_bijective(self, order):
        side = 1 << order
        seen = set()
        for x in range(side):
            for y in range(side):
                seen.add(hilbert_index(order, x, y))
        assert seen == set(range(side * side))

    @pytest.mark.parametrize("order", [1, 3, 5])
    def test_round_trip(self, order):
        side = 1 << order
        for d in range(side * side):
            x, y = hilbert_point(order, d)
            assert hilbert_index(order, x, y) == d

    @pytest.mark.parametrize("order", [2, 4])
    def test_consecutive_cells_are_adjacent(self, order):
        """The Hilbert curve moves one grid step at a time — the locality
        property SS sampling and tree packing rely on."""
        side = 1 << order
        prev = hilbert_point(order, 0)
        for d in range(1, side * side):
            cur = hilbert_point(order, d)
            assert abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) == 1
            prev = cur

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index(2, 4, 0)
        with pytest.raises(ValueError):
            hilbert_index(2, 0, -1)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            hilbert_point(2, 16)

    @pytest.mark.parametrize("order", [0, 32, -3, 2.5])
    def test_bad_order_rejected(self, order):
        with pytest.raises(ValueError):
            hilbert_index(order, 0, 0)


class TestVectorizedCurve:
    @pytest.mark.parametrize("order", [1, 2, 4, 8])
    def test_matches_scalar(self, order, rng):
        side = 1 << order
        x = rng.integers(0, side, size=300)
        y = rng.integers(0, side, size=300)
        vec = hilbert_index_vectorized(order, x, y)
        ref = np.array([hilbert_index(order, int(a), int(b)) for a, b in zip(x, y)])
        assert np.array_equal(vec, ref.astype(np.uint64))

    def test_large_order_no_overflow(self):
        order = 31
        side = 1 << order
        keys = hilbert_index_vectorized(
            order, np.array([side - 1]), np.array([side - 1])
        )
        assert 0 <= int(keys[0]) < side * side

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index_vectorized(2, np.array([4]), np.array([0]))

    def test_empty_input(self):
        out = hilbert_index_vectorized(4, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert out.shape == (0,)


class TestPointKeys:
    def test_far_edge_lands_in_last_cell(self):
        keys = hilbert_keys_for_points(
            np.array([1.0]), np.array([1.0]), extent_min=(0, 0), extent_size=(1, 1), order=4
        )
        assert int(keys[0]) == hilbert_index(4, 15, 15)

    def test_origin_in_first_cell(self):
        keys = hilbert_keys_for_points(
            np.array([0.0]), np.array([0.0]), extent_min=(0, 0), extent_size=(1, 1), order=4
        )
        assert int(keys[0]) == hilbert_index(4, 0, 0)

    def test_bad_extent_rejected(self):
        with pytest.raises(ValueError):
            hilbert_keys_for_points(
                np.array([0.0]), np.array([0.0]), extent_min=(0, 0), extent_size=(0, 1)
            )

    def test_default_order_used(self, rng):
        x = rng.random(10)
        y = rng.random(10)
        a = hilbert_keys_for_points(x, y, extent_min=(0, 0), extent_size=(1, 1))
        b = hilbert_keys_for_points(
            x, y, extent_min=(0, 0), extent_size=(1, 1), order=DEFAULT_ORDER
        )
        assert np.array_equal(a, b)


class TestSortOrder:
    def test_is_permutation(self, rng):
        x, y = rng.random(500), rng.random(500)
        order = hilbert_sort_order(x, y, extent_min=(0, 0), extent_size=(1, 1))
        assert sorted(order.tolist()) == list(range(500))

    def test_sorted_keys_nondecreasing(self, rng):
        x, y = rng.random(500), rng.random(500)
        order = hilbert_sort_order(x, y, extent_min=(0, 0), extent_size=(1, 1))
        keys = hilbert_keys_for_points(x, y, extent_min=(0, 0), extent_size=(1, 1))
        assert np.all(np.diff(keys[order].astype(np.int64)) >= 0)

    def test_locality_beats_random_order(self, rng):
        """Hilbert ordering should place consecutive points much closer
        together than a random ordering does (the property making SS and
        Hilbert packing meaningful)."""
        x, y = rng.random(2000), rng.random(2000)
        order = hilbert_sort_order(x, y, extent_min=(0, 0), extent_size=(1, 1))

        def mean_step(perm):
            return float(
                np.hypot(np.diff(x[perm]), np.diff(y[perm])).mean()
            )

        random_perm = rng.permutation(2000)
        assert mean_step(order) < 0.25 * mean_step(random_perm)
