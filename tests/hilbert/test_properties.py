"""Property-based tests for the Hilbert curve."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hilbert import hilbert_index, hilbert_index_vectorized, hilbert_point

orders = st.integers(min_value=1, max_value=10)


@st.composite
def order_and_cell(draw):
    order = draw(orders)
    side = 1 << order
    x = draw(st.integers(min_value=0, max_value=side - 1))
    y = draw(st.integers(min_value=0, max_value=side - 1))
    return order, x, y


@given(order_and_cell())
def test_round_trip_property(case):
    order, x, y = case
    d = hilbert_index(order, x, y)
    assert hilbert_point(order, d) == (x, y)


@given(order_and_cell())
def test_index_in_range(case):
    order, x, y = case
    d = hilbert_index(order, x, y)
    assert 0 <= d < (1 << order) ** 2


@given(order_and_cell())
def test_vectorized_agrees_with_scalar(case):
    order, x, y = case
    vec = hilbert_index_vectorized(order, np.array([x]), np.array([y]))
    assert int(vec[0]) == hilbert_index(order, x, y)


@settings(max_examples=30)
@given(orders, st.integers(min_value=0))
def test_adjacent_indices_are_grid_neighbors(order, seed):
    side = 1 << order
    d = seed % (side * side - 1)
    x1, y1 = hilbert_point(order, d)
    x2, y2 = hilbert_point(order, d + 1)
    assert abs(x1 - x2) + abs(y1 - y2) == 1


@given(orders)
def test_curve_endpoints(order):
    # The canonical curve starts at the origin corner...
    assert hilbert_point(order, 0) == (0, 0)
    # ...and ends at the (side-1, 0) corner.
    side = 1 << order
    assert hilbert_point(order, side * side - 1) == (side - 1, 0)
