"""The catalog as an L2 tier: caches, shard workers, and the server.

These are the warm-start integration tests: a catalog populated by one
process (or one cache) must satisfy the next one without touching the
raw data, and every layer must *say so* — ``resolve`` sources, the
pool's ``store_hits``, the response's ``via`` — so a warm answer is
distinguishable from a rebuild in any stats snapshot.
"""

import asyncio

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.histograms import GHHistogram, downsample_gh
from repro.histograms.file import histogram_parts
from repro.perf import FlatTreeCache, HistogramCache
from repro.rtree import flat_join_count, flat_load_str
from repro.runtime import Deadline, runtime_scope
from repro.serve import EstimationServer, ServeRequest, ShardPool
from repro.store import ArtifactCatalog
from tests.conftest import random_rects


@pytest.fixture
def store(tmp_path):
    return ArtifactCatalog(tmp_path / "store")


@pytest.fixture
def dataset(rng):
    return SpatialDataset("tier", random_rects(rng, 180))


class TestHistogramCacheTier:
    def test_resolution_order_build_then_store_then_l1(self, store, dataset):
        cache = HistogramCache(store=store)
        _, source = cache.resolve(dataset, "gh", 5)
        assert source == "build"
        assert store.stats.publishes == 1
        _, source = cache.resolve(dataset, "gh", 5)
        assert source == "l1"
        # A cold cache over the same catalog answers from disk.
        warm = HistogramCache(store=store)
        hist, source = warm.resolve(dataset, "gh", 5)
        assert source == "store"
        assert warm.stats.builds == 0
        fresh = GHHistogram.build(dataset, 5)
        _, stats_a = histogram_parts(fresh)
        _, stats_b = histogram_parts(hist)
        assert np.array_equal(stats_a, stats_b)

    def test_store_derived_pools_a_stored_finer_gh(self, store, dataset):
        HistogramCache(store=store).resolve(dataset, "gh", 5)
        warm = HistogramCache(store=store)
        hist, source = warm.resolve(dataset, "gh", 3)
        assert source == "store-derived"
        assert warm.stats.builds == 0
        expected = downsample_gh(downsample_gh(GHHistogram.build(dataset, 5)))
        _, stats_a = histogram_parts(expected)
        _, stats_b = histogram_parts(hist)
        assert np.array_equal(stats_a, stats_b)

    def test_no_store_behaves_exactly_as_before(self, dataset):
        cache = HistogramCache()
        _, source = cache.resolve(dataset, "gh", 5)
        assert source == "build"
        _, source = cache.resolve(dataset, "gh", 5)
        assert source == "l1"
        _, source = cache.resolve(dataset, "gh", 4)
        assert source == "derived"

    def test_deadline_scope_skips_the_publish(self, store, dataset):
        cache = HistogramCache(store=store)
        with runtime_scope(deadline=Deadline(60.0)):
            _, source = cache.resolve(dataset, "gh", 5)
        assert source == "build"
        assert store.stats.publishes == 0  # fsync is not deadline money

    def test_read_only_store_serves_but_never_publishes(self, tmp_path, dataset):
        writer = ArtifactCatalog(tmp_path / "store")
        HistogramCache(store=writer).resolve(dataset, "gh", 5)
        reader = ArtifactCatalog(tmp_path / "store", read_only=True)
        cache = HistogramCache(store=reader)
        _, source = cache.resolve(dataset, "gh", 5)
        assert source == "store"
        _, source = cache.resolve(dataset, "ph", 4)
        assert source == "build"
        assert reader.stats.publishes == 0


class TestFlatTreeCacheTier:
    def test_warm_tree_load_preserves_join_counts(self, store, rng):
        a, b = random_rects(rng, 150), random_rects(rng, 170)
        cold = FlatTreeCache(store=store)
        tree_a, source = cold.resolve(a, "str")
        assert source == "build"
        warm = FlatTreeCache(store=store)
        loaded_a, source = warm.resolve(a, "str")
        assert source == "store"
        assert warm.stats.builds == 0
        tree_b = flat_load_str(b)
        assert flat_join_count(loaded_a, tree_b) == flat_join_count(tree_a, tree_b)
        _, source = warm.resolve(a, "str")
        assert source == "l1"


class TestShardPoolWarmStart:
    def test_workers_answer_from_a_prewarmed_catalog(self, tmp_path, rng):
        datasets = {
            name: SpatialDataset(name, random_rects(rng, 150))
            for name in ("roads", "rivers")
        }
        root = tmp_path / "store"
        writer = ArtifactCatalog(root)
        for ds in datasets.values():
            writer.put_histogram(
                HistogramCache.key_for(ds, "gh", 5), GHHistogram.build(ds, 5)
            )
        with ShardPool(datasets, 2, store_root=root, call_timeout_s=30.0) as pool:
            hist = pool.prepare("roads", "gh", 5)
            assert pool.stats()["store_hits"] == 1
            # The store-loaded histogram is a real, materialized one.
            fresh = GHHistogram.build(datasets["roads"], 5)
            _, stats_a = histogram_parts(fresh)
            _, stats_b = histogram_parts(hist)
            assert np.array_equal(stats_a, stats_b)
            # A level the catalog does not hold still builds normally.
            pool.prepare("rivers", "gh", 4)
            assert pool.stats()["store_hits"] == 1

    def test_pool_without_store_counts_nothing(self, rng):
        datasets = {"solo": SpatialDataset("solo", random_rects(rng, 100))}
        with ShardPool(datasets, 1, call_timeout_s=30.0) as pool:
            pool.prepare("solo", "gh", 4)
            assert pool.stats()["store_hits"] == 0


class TestServeProvenance:
    def _serve(self, server, request):
        async def go():
            async with server:
                return await server.submit(request)

        return asyncio.run(go())

    @pytest.fixture
    def datasets(self, rng):
        return {
            name: SpatialDataset(name, random_rects(rng, 200))
            for name in ("roads", "rivers")
        }

    def _force_cached(self, datasets, store):
        def broken_runner(queries, deadline_s):
            raise OSError("estimator tier is down")

        return EstimationServer(datasets, batch_runner=broken_runner, store=store)

    def test_cached_rung_records_store_when_warm(self, tmp_path, datasets):
        root = tmp_path / "store"
        writer = ArtifactCatalog(root)
        # Prewarm the *coarsened* level the ladder will actually ask for
        # (requested 6 − coarsen_by 3 = 3).
        for ds in datasets.values():
            writer.put_histogram(
                HistogramCache.key_for(ds, "gh", 3), GHHistogram.build(ds, 3)
            )
        server = self._force_cached(datasets, ArtifactCatalog(root))
        response = self._serve(server, ServeRequest("roads", "rivers", level=6))
        assert response.provenance.rung == "cached-coarse"
        assert response.provenance.via == "store"
        stats = server.stats()
        assert stats["store"]["hits"] == 2

    def test_cached_rung_records_build_when_cold(self, tmp_path, datasets):
        server = self._force_cached(datasets, ArtifactCatalog(tmp_path / "store"))
        response = self._serve(server, ServeRequest("roads", "rivers", level=6))
        assert response.provenance.rung == "cached-coarse"
        assert response.provenance.via == "build"

    def test_storeless_server_keeps_the_local_label(self, datasets):
        server = self._force_cached(datasets, None)
        response = self._serve(server, ServeRequest("roads", "rivers", level=6))
        assert response.provenance.rung == "cached-coarse"
        assert response.provenance.via in ("local", "build")
        assert "store" not in server.stats()
