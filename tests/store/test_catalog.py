"""The on-disk catalog itself: publish, load, verify, retire.

Everything here runs against real directories (``tmp_path``) — the
catalog's contract is about *files*: atomic appearance, mmap-backed
loads that equal the published arrays bitwise, corruption surfacing as
a counted miss rather than a wrong answer, and LRU eviction ordered by
recency of use.
"""

import json
import os

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.histograms import BasicGHHistogram, GHHistogram, PHHistogram
from repro.histograms.file import histogram_parts
from repro.perf import FlatTreeCache, HistogramCache
from repro.rtree import flat_join_count, flat_load_str
from repro.store import (
    ArtifactCatalog,
    MANIFEST_NAME,
    hist_entry_name,
    tree_entry_name,
)
from tests.conftest import random_rects


@pytest.fixture
def dataset(rng):
    return SpatialDataset("cat", random_rects(rng, 150))


@pytest.fixture
def catalog(tmp_path):
    return ArtifactCatalog(tmp_path / "store")


def publish_gh(catalog, dataset, level=5):
    key = HistogramCache.key_for(dataset, "gh", level)
    hist = GHHistogram.build(dataset, level)
    assert catalog.put_histogram(key, hist)
    return key, hist


class TestHistogramRoundTrip:
    @pytest.mark.parametrize(
        "scheme,cls",
        [("gh", GHHistogram), ("ph", PHHistogram), ("gh_basic", BasicGHHistogram)],
    )
    def test_load_is_bit_identical(self, catalog, dataset, scheme, cls):
        key = HistogramCache.key_for(dataset, scheme, 4)
        built = cls.build(dataset, 4)
        assert catalog.put_histogram(key, built)
        loaded = catalog.load_histogram(key)
        assert type(loaded) is cls
        scalars_a, stats_a = histogram_parts(built)
        scalars_b, stats_b = histogram_parts(loaded)
        assert scalars_a == scalars_b
        assert np.array_equal(stats_a, stats_b)

    def test_load_is_memory_mapped(self, catalog, dataset):
        key, _ = publish_gh(catalog, dataset)
        loaded = catalog.load_histogram(key)
        assert isinstance(loaded.c.base, np.memmap) or isinstance(
            loaded.c, np.memmap
        )

    def test_miss_returns_none_and_counts(self, catalog, dataset):
        key = HistogramCache.key_for(dataset, "gh", 6)
        assert catalog.load_histogram(key) is None
        assert catalog.stats.misses == 1
        assert catalog.stats.hits == 0

    def test_publish_is_idempotent(self, catalog, dataset):
        key, hist = publish_gh(catalog, dataset)
        assert catalog.put_histogram(key, hist)  # second publish: no-op, True
        assert catalog.stats.publishes == 1
        assert len(catalog.entries()) == 1

    def test_key_mismatch_is_rejected(self, catalog, dataset):
        key = HistogramCache.key_for(dataset, "gh", 5)
        wrong_level = GHHistogram.build(dataset, 4)
        with pytest.raises(ValueError, match="does not match key"):
            catalog.put_histogram(key, wrong_level)


class TestTreeRoundTrip:
    def test_join_count_identity(self, catalog, rng):
        a, b = random_rects(rng, 120), random_rects(rng, 140)
        key = FlatTreeCache.key_for(a, "str", 16)
        built = flat_load_str(a, max_entries=16)
        assert catalog.put_tree(key, built)
        loaded = catalog.load_tree(key)
        other = flat_load_str(b, max_entries=16)
        assert flat_join_count(loaded, other) == flat_join_count(built, other)
        assert np.array_equal(loaded.entry_coords, built.entry_coords)
        assert np.array_equal(loaded.entry_ids, built.entry_ids)


class TestCorruption:
    def test_torn_payload_reads_as_counted_miss(self, catalog, dataset):
        key, _ = publish_gh(catalog, dataset)
        entry_dir = catalog.root / "objects" / hist_entry_name(key)
        (entry_dir / "stats.npy").write_bytes(b"torn")
        assert catalog.load_histogram(key) is None
        assert catalog.stats.corrupt_detected == 1
        # The writable catalog also discarded the entry on detection.
        assert not entry_dir.exists()

    def test_flipped_bytes_fail_full_verify(self, catalog, dataset):
        key, _ = publish_gh(catalog, dataset)
        name = hist_entry_name(key)
        payload = catalog.root / "objects" / name / "stats.npy"
        raw = bytearray(payload.read_bytes())
        raw[-1] ^= 0xFF  # same size, different content: only checksum sees it
        payload.write_bytes(bytes(raw))
        problems = catalog.verify_entry(name)
        assert problems and any("checksum" in p for p in problems)

    def test_foreign_manifest_key_is_rejected(self, catalog, dataset, rng):
        key, _ = publish_gh(catalog, dataset)
        other = SpatialDataset("other", random_rects(rng, 90))
        other_key = HistogramCache.key_for(other, "gh", 5)
        # Graft this entry's directory under the other key's name.
        src = catalog.root / "objects" / hist_entry_name(key)
        dst = catalog.root / "objects" / hist_entry_name(other_key)
        os.rename(src, dst)
        assert catalog.load_histogram(other_key) is None
        assert catalog.stats.corrupt_detected == 1


class TestDonorLookup:
    def test_prefers_coarsest_stored_finer_level(self, catalog, dataset):
        for level in (7, 6):
            publish_gh(catalog, dataset, level)
        key = HistogramCache.key_for(dataset, "gh", 4)
        donor = catalog.gh_donor_key(key)
        assert donor is not None and donor.level == 6

    def test_no_donor_at_or_below_requested_level(self, catalog, dataset):
        publish_gh(catalog, dataset, 5)
        assert catalog.gh_donor_key(HistogramCache.key_for(dataset, "gh", 5)) is None
        assert catalog.gh_donor_key(HistogramCache.key_for(dataset, "gh", 6)) is None


class TestRetention:
    def test_invalidate_removes_entry(self, catalog, dataset):
        key, _ = publish_gh(catalog, dataset)
        assert catalog.invalidate(key) is True
        assert catalog.invalidate(key) is False  # already gone
        assert catalog.stats.invalidations == 1
        assert catalog.load_histogram(key) is None

    def test_evict_drops_least_recently_used_first(self, catalog, dataset, rng):
        other = SpatialDataset("fresh", random_rects(rng, 80))
        old_key, _ = publish_gh(catalog, dataset, 5)
        new_key, _ = publish_gh(catalog, other, 5)
        # Make the *first* entry the most recently used.
        old_manifest = catalog.root / "objects" / hist_entry_name(old_key) / MANIFEST_NAME
        new_manifest = catalog.root / "objects" / hist_entry_name(new_key) / MANIFEST_NAME
        past = os.stat(new_manifest).st_mtime - 1000
        os.utime(new_manifest, (past, past))
        assert catalog.load_histogram(old_key) is not None  # touches recency
        removed = catalog.evict(max_bytes=catalog.total_bytes() - 1)
        assert removed == [hist_entry_name(new_key)]
        assert catalog.load_histogram(old_key) is not None

    def test_evict_to_zero_clears_everything(self, catalog, dataset):
        publish_gh(catalog, dataset, 5)
        publish_gh(catalog, dataset, 6)
        removed = catalog.evict(max_bytes=0)
        assert len(removed) == 2
        assert catalog.total_bytes() == 0
        assert catalog.stats.evictions == 2


class TestReadOnly:
    def test_read_only_never_writes(self, tmp_path, dataset):
        writer = ArtifactCatalog(tmp_path / "store")
        key, hist = publish_gh(writer, dataset)
        reader = ArtifactCatalog(tmp_path / "store", read_only=True)
        assert reader.load_histogram(key) is not None
        assert reader.put_histogram(key, hist) is False
        with pytest.raises(ValueError, match="read-only"):
            reader.invalidate(key)

    def test_read_only_on_missing_root_reads_as_empty(self, tmp_path, dataset):
        reader = ArtifactCatalog(tmp_path / "never-created", read_only=True)
        key = HistogramCache.key_for(dataset, "gh", 5)
        assert reader.load_histogram(key) is None
        assert reader.entries() == []


class TestManifest:
    def test_manifest_records_key_params_and_source(self, catalog, dataset):
        key = HistogramCache.key_for(dataset, "gh", 5)
        hist = GHHistogram.build(dataset, 5)
        catalog.put_histogram(key, hist, source={"dataset": "cat", "scale": 2.0})
        manifest_path = (
            catalog.root / "objects" / hist_entry_name(key) / MANIFEST_NAME
        )
        manifest = json.loads(manifest_path.read_text())
        assert manifest["kind"] == "gh"
        assert manifest["key"]["fingerprint"] == key.fingerprint
        assert manifest["source"] == {"dataset": "cat", "scale": 2.0}
        assert "stats" in manifest["arrays"]

    def test_entries_report_names_kinds_and_bytes(self, catalog, dataset, rng):
        publish_gh(catalog, dataset)
        rects = random_rects(rng, 60)
        tree_key = FlatTreeCache.key_for(rects, "str", 8)
        catalog.put_tree(tree_key, flat_load_str(rects, max_entries=8))
        entries = {e.name: e for e in catalog.entries()}
        assert set(entries) == {
            hist_entry_name(HistogramCache.key_for(dataset, "gh", 5)),
            tree_entry_name(tree_key),
        }
        assert all(e.nbytes > 0 for e in entries.values())
        assert catalog.total_bytes() == sum(e.nbytes for e in entries.values())
