"""Property: publish → load is the identity, for every artifact kind.

The acceptance-criterion gate for the catalog's bit-identity claim:
over randomized rectangle sets, schemes, levels, packings and fan-outs,
a histogram loaded back from disk has ``np.array_equal`` stat planes
(and identical scalars), and a loaded tree joins to the *exact* same
pair count as the freshly packed one.

Hypothesis drives the shapes; each example builds its own throwaway
catalog root (``tempfile`` in the body — ``tmp_path`` is function-scoped
and would be reused across examples).
"""

import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datasets import SpatialDataset
from repro.geometry import RectArray
from repro.histograms import BasicGHHistogram, GHHistogram, PHHistogram
from repro.histograms.file import histogram_parts
from repro.perf import FlatTreeCache, HistogramCache
from repro.rtree import flat_join_count, flat_load_hilbert, flat_load_str
from repro.store import ArtifactCatalog

_SCHEMES = {"gh": GHHistogram, "ph": PHHistogram, "gh_basic": BasicGHHistogram}
_PACKERS = {"str": flat_load_str, "hilbert": flat_load_hilbert}


@st.composite
def rect_arrays(draw, min_n=1, max_n=60):
    n = draw(st.integers(min_n, max_n))
    coord = st.floats(0.0, 1.0, allow_nan=False, width=32)
    xs = [sorted((draw(coord), draw(coord))) for _ in range(n)]
    ys = [sorted((draw(coord), draw(coord))) for _ in range(n)]
    return RectArray(
        np.array([x[0] for x in xs]),
        np.array([y[0] for y in ys]),
        np.array([x[1] for x in xs]),
        np.array([y[1] for y in ys]),
    )


@settings(max_examples=25, deadline=None)
@given(
    rects=rect_arrays(),
    scheme=st.sampled_from(sorted(_SCHEMES)),
    level=st.integers(1, 6),
)
def test_histogram_roundtrip_is_identity(rects, scheme, level):
    dataset = SpatialDataset("prop", rects)
    built = _SCHEMES[scheme].build(dataset, level)
    key = HistogramCache.key_for(dataset, scheme, level)
    with tempfile.TemporaryDirectory() as root:
        catalog = ArtifactCatalog(root)
        assert catalog.put_histogram(key, built)
        loaded = catalog.load_histogram(key)
    assert type(loaded) is type(built)
    scalars_a, stats_a = histogram_parts(built)
    scalars_b, stats_b = histogram_parts(loaded)
    assert scalars_a == scalars_b
    assert np.array_equal(stats_a, stats_b)  # bitwise, NaN-free by construction


@settings(max_examples=15, deadline=None)
@given(
    rects=rect_arrays(min_n=2, max_n=80),
    probe=rect_arrays(min_n=2, max_n=40),
    packing=st.sampled_from(sorted(_PACKERS)),
    max_entries=st.integers(2, 16),
)
def test_tree_roundtrip_preserves_exact_join_counts(
    rects, probe, packing, max_entries
):
    built = _PACKERS[packing](rects, max_entries=max_entries)
    key = FlatTreeCache.key_for(rects, packing, max_entries)
    with tempfile.TemporaryDirectory() as root:
        catalog = ArtifactCatalog(root)
        assert catalog.put_tree(key, built)
        loaded = catalog.load_tree(key)
    probe_tree = flat_load_str(probe, max_entries=4)
    assert flat_join_count(loaded, probe_tree) == flat_join_count(
        built, probe_tree
    )
    for name, block in built.to_blocks().items():
        assert np.array_equal(loaded.to_blocks()[name], block)
