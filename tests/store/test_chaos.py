"""Chaos tests for the atomic publish protocol: torn publishes leave
nothing behind.

The invariant (ISSUE 7, satellite): a fault at *any* checkpoint of
``ArtifactCatalog._publish`` — mid array write, before the manifest,
before the final rename — must leave ``objects/`` without a partial
entry.  A torn artifact that a later process memory-maps would serve
wrong numbers forever; the protocol's whole point is that an entry
either exists complete (manifest last, rename atomic) or not at all.
"""

import pytest

from repro.datasets import SpatialDataset
from repro.histograms import GHHistogram
from repro.histograms.file import histogram_parts
from repro.perf import HistogramCache
from repro.service import FaultPlan, FaultSpec, inject_faults
from repro.store import ArtifactCatalog, MANIFEST_NAME, hist_entry_name
from tests.conftest import random_rects

pytestmark = pytest.mark.chaos

STAGES = ("store.publish.write", "store.publish.manifest", "store.publish.rename")


@pytest.fixture
def dataset(rng):
    return SpatialDataset("chaos", random_rects(rng, 120))


@pytest.fixture
def payload(dataset):
    key = HistogramCache.key_for(dataset, "gh", 5)
    return key, GHHistogram.build(dataset, 5)


class TestPublishFaults:
    @pytest.mark.parametrize("stage", STAGES)
    def test_fault_leaves_no_partial_artifact(self, tmp_path, payload, stage):
        key, hist = payload
        catalog = ArtifactCatalog(tmp_path / "store")
        plan = FaultPlan([FaultSpec(stage, times=1)])
        with inject_faults(plan):
            with pytest.raises(Exception):
                catalog.put_histogram(key, hist)
        assert plan.activations  # the fault really fired mid-publish
        objects = catalog.root / "objects"
        assert list(objects.iterdir()) == []  # nothing — complete or partial
        assert catalog.load_histogram(key) is None
        assert catalog.stats.publishes == 0

    @pytest.mark.parametrize("stage", STAGES)
    def test_staging_debris_is_dropped_immediately(self, tmp_path, payload, stage):
        key, hist = payload
        catalog = ArtifactCatalog(tmp_path / "store")
        plan = FaultPlan([FaultSpec(stage, times=1)])
        with inject_faults(plan):
            with pytest.raises(Exception):
                catalog.put_histogram(key, hist)
        assert list((catalog.root / "tmp").iterdir()) == []

    def test_recovery_publish_succeeds_and_is_bit_identical(self, tmp_path, payload):
        key, hist = payload
        catalog = ArtifactCatalog(tmp_path / "store")
        plan = FaultPlan([FaultSpec("store.publish.rename", times=1)])
        with inject_faults(plan):
            with pytest.raises(Exception):
                catalog.put_histogram(key, hist)
        # Fault cleared: the same publish now lands, and the load equals
        # the in-memory original bitwise.
        assert catalog.put_histogram(key, hist)
        loaded = catalog.load_histogram(key)
        import numpy as np

        scalars_a, stats_a = histogram_parts(hist)
        scalars_b, stats_b = histogram_parts(loaded)
        assert scalars_a == scalars_b
        assert np.array_equal(stats_a, stats_b)

    def test_fresh_catalog_sweeps_crashed_publisher_debris(self, tmp_path, payload):
        key, hist = payload
        root = tmp_path / "store"
        # Simulate a publisher that died without its except-handler
        # (SIGKILL): hand-plant staging debris, as _sweep_tmp would find.
        debris = root / "tmp" / f"{hist_entry_name(key)}.999.0"
        debris.mkdir(parents=True)
        (debris / "stats.npy").write_bytes(b"partial")
        catalog = ArtifactCatalog(root)
        assert list((root / "tmp").iterdir()) == []
        assert catalog.put_histogram(key, hist)
        assert catalog.load_histogram(key) is not None


class TestCacheTierUnderFaults:
    def test_fault_hook_blocks_cache_publishes(self, tmp_path, dataset):
        """A histogram built under an active fault hook may be poisoned;
        the L2 tier must not persist it (mirroring the L1 no-retention
        rule from the cache chaos suite)."""
        catalog = ArtifactCatalog(tmp_path / "store")
        cache = HistogramCache(store=catalog)
        plan = FaultPlan([FaultSpec("never.fires", times=1)])
        with inject_faults(plan):
            hist, source = cache.resolve(dataset, "gh", 5)
        assert source == "build"
        assert hist is not None
        assert catalog.entries() == []  # nothing persisted under the hook
        # Hook gone: the same resolve publishes (L1 kept nothing either).
        cache2 = HistogramCache(store=catalog)
        cache2.resolve(dataset, "gh", 5)
        assert len(catalog.entries()) == 1

    def test_partial_entry_never_serves(self, tmp_path, payload):
        """Belt-and-braces: hand-build the worst-case torn entry (arrays
        present, manifest missing) and confirm it reads as a miss."""
        key, hist = payload
        writer = ArtifactCatalog(tmp_path / "store")
        assert writer.put_histogram(key, hist)
        entry = writer.root / "objects" / hist_entry_name(key)
        (entry / MANIFEST_NAME).unlink()
        reader = ArtifactCatalog(tmp_path / "store", read_only=True)
        assert reader.load_histogram(key) is None
        assert reader.stats.misses == 1
