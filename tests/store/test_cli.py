"""``python -m repro.store`` — the operational loop, end to end.

One small prewarm feeds every other subcommand: list sees it, verify
(checksums and full rebuild) certifies it, evict trims it, and a
corrupted payload flips verify's exit code to 1.
"""

import json

import pytest

from repro.store.cli import main


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "store")


def prewarm(root, *extra):
    return main(
        [
            "prewarm",
            "--root", root,
            "--datasets", "CAR",
            "--cardinality", "200",
            "--levels", "4",
            *extra,
        ]
    )


class TestPrewarm:
    def test_publishes_histograms_and_trees(self, root, capsys):
        assert prewarm(root, "--trees") == 0
        out = capsys.readouterr().out
        assert "CAR gh h=4 (200 rects) published" in out
        assert "tree str m=8 published" in out
        assert "2 artifacts published" in out

    def test_second_run_is_idempotent(self, root, capsys):
        assert prewarm(root) == 0
        assert prewarm(root) == 0
        assert "0 artifacts published" in capsys.readouterr().out

    def test_unknown_dataset_is_a_usage_error(self, root):
        assert main(["prewarm", "--root", root, "--datasets", "nonesuch"]) == 2

    def test_unknown_scheme_is_a_usage_error(self, root):
        assert main(
            ["prewarm", "--root", root, "--datasets", "CAR", "--schemes", "zh"]
        ) == 2


class TestListVerifyEvict:
    def test_list_json_round_trips(self, root, capsys):
        prewarm(root, "--trees")
        capsys.readouterr()
        assert main(["list", "--root", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {e["kind"] for e in payload} == {"gh", "flat_tree"}
        assert all(e["source"]["dataset"] == "CAR" for e in payload)

    def test_verify_rebuild_certifies_a_clean_catalog(self, root, capsys):
        prewarm(root, "--trees")
        assert main(["verify", "--root", root, "--rebuild"]) == 0
        assert "0 problems" in capsys.readouterr().out

    def test_verify_catches_flipped_bytes(self, root, tmp_path, capsys):
        prewarm(root)
        objects = tmp_path / "store" / "objects"
        payload = next(objects.glob("gh.h04.*")) / "stats.npy"
        raw = bytearray(payload.read_bytes())
        raw[-1] ^= 0xFF
        payload.write_bytes(bytes(raw))
        assert main(["verify", "--root", root]) == 1
        assert "PROBLEM" in capsys.readouterr().out

    def test_evict_to_zero_empties_the_catalog(self, root, capsys):
        prewarm(root, "--trees")
        assert main(["evict", "--root", root, "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "2 removed, 0 bytes remain" in out
        assert main(["list", "--root", root]) == 0

    def test_negative_budget_is_a_usage_error(self, root):
        assert main(["evict", "--root", root, "--max-bytes", "-1"]) == 2
