"""Unit tests for the vector-geometry → MBR abstraction helpers."""

import numpy as np
import pytest

from repro.geometry import (
    Rect,
    points_mbrs,
    polygon_mbrs,
    polyline_mbrs,
    segment_mbrs,
)


class TestPointsMbrs:
    def test_pair_form(self):
        arr = points_mbrs((np.array([1.0, 2.0]), np.array([3.0, 4.0])))
        assert arr[0] == Rect.point(1, 3)
        assert arr[1] == Rect.point(2, 4)

    def test_array_form(self):
        arr = points_mbrs(np.array([[1.0, 3.0], [2.0, 4.0]]))
        assert arr[0] == Rect.point(1, 3)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            points_mbrs(np.zeros((2, 3)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            points_mbrs((np.array([1.0]), np.array([1.0, 2.0])))


class TestPolylineMbrs:
    def test_single_line(self):
        arr = polyline_mbrs([np.array([[0, 0], [2, 1], [1, 3]], dtype=float)])
        assert arr[0] == Rect(0, 0, 2, 3)

    def test_multiple_lines(self):
        lines = [
            np.array([[0, 0], [1, 1]], dtype=float),
            np.array([[5, 5], [6, 4]], dtype=float),
        ]
        arr = polyline_mbrs(lines)
        assert len(arr) == 2
        assert arr[1] == Rect(5, 4, 6, 5)

    def test_empty_iterable(self):
        assert len(polyline_mbrs([])) == 0

    def test_empty_line_rejected(self):
        with pytest.raises(ValueError, match="at least one vertex"):
            polyline_mbrs([np.empty((0, 2))])

    def test_single_vertex_degenerate(self):
        arr = polyline_mbrs([np.array([[2.0, 3.0]])])
        assert arr[0].is_point


class TestSegmentMbrs:
    def test_chain_produces_n_minus_1(self):
        chain = np.array([[0, 0], [1, 2], [3, 1], [2, 4]], dtype=float)
        arr = segment_mbrs([chain])
        assert len(arr) == 3
        assert arr[0] == Rect(0, 0, 1, 2)
        assert arr[1] == Rect(1, 1, 3, 2)
        assert arr[2] == Rect(2, 1, 3, 4)

    def test_segments_are_thin(self):
        # Horizontal segment → zero-height MBR.
        arr = segment_mbrs([np.array([[0, 1], [5, 1]], dtype=float)])
        assert arr[0].height == 0

    def test_short_lines_skipped(self):
        arr = segment_mbrs([np.array([[1.0, 1.0]]), np.empty((0, 2))])
        assert len(arr) == 0

    def test_multiple_chains_concatenated(self):
        chains = [
            np.array([[0, 0], [1, 0], [2, 0]], dtype=float),
            np.array([[5, 5], [6, 6]], dtype=float),
        ]
        assert len(segment_mbrs(chains)) == 3

    def test_union_of_segments_covers_polyline_mbr(self, rng):
        chain = rng.random((20, 2))
        segments = segment_mbrs([chain])
        whole = polyline_mbrs([chain])[0]
        assert segments.bounds() == whole


class TestPolygonMbrs:
    def test_triangle(self):
        ring = np.array([[0, 0], [4, 0], [2, 3]], dtype=float)
        assert polygon_mbrs([ring])[0] == Rect(0, 0, 4, 3)

    def test_closed_ring_same_result(self):
        opened = np.array([[0, 0], [4, 0], [2, 3]], dtype=float)
        closed = np.vstack([opened, opened[:1]])
        assert polygon_mbrs([opened])[0] == polygon_mbrs([closed])[0]

    def test_degenerate_ring_rejected(self):
        with pytest.raises(ValueError, match="three vertices"):
            polygon_mbrs([np.array([[0, 0], [1, 1]], dtype=float)])

    def test_empty_iterable(self):
        assert len(polygon_mbrs([])) == 0


class TestEndToEnd:
    def test_vector_data_to_selectivity(self, rng):
        """The advertised workflow: raw vector features -> MBR dataset ->
        GH estimate."""
        from repro.datasets import SpatialDataset
        from repro.histograms import gh_selectivity
        from repro.join import actual_selectivity

        chains = [np.cumsum(rng.normal(0, 0.01, (30, 2)), axis=0) + rng.random(2) * 0.8
                  for _ in range(120)]
        rings = [rng.random(2) * 0.9 + rng.random((5, 2)) * 0.08 for _ in range(800)]

        from repro.geometry import common_extent

        streams = segment_mbrs(chains)
        parcels = polygon_mbrs(rings)
        extent = common_extent(streams, parcels, pad_fraction=0.01)
        ds1 = SpatialDataset("streams", streams, extent)
        ds2 = SpatialDataset("parcels", parcels, extent)
        est = gh_selectivity(ds1, ds2, 5)
        truth = actual_selectivity(streams, parcels)
        assert est == pytest.approx(truth, rel=0.5)
