"""Property-based tests of the geometry kernel (hypothesis)."""

import math

from hypothesis import given, strategies as st

from repro.geometry import Rect, classify_intersection_points

coordinate = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw) -> Rect:
    x1, x2 = draw(coordinate), draw(coordinate)
    y1, y2 = draw(coordinate), draw(coordinate)
    return Rect.from_points(x1, y1, x2, y2)


@given(rects(), rects())
def test_intersects_symmetric(a: Rect, b: Rect):
    assert a.intersects(b) == b.intersects(a)


@given(rects())
def test_self_intersection_identity(a: Rect):
    assert a.intersects(a)
    assert a.intersection(a) == a


@given(rects(), rects())
def test_intersection_contained_in_both(a: Rect, b: Rect):
    inter = a.intersection(b)
    if inter is None:
        assert not a.intersects(b)
    else:
        assert a.contains_rect(inter)
        assert b.contains_rect(inter)


@given(rects(), rects())
def test_intersection_commutative(a: Rect, b: Rect):
    assert a.intersection(b) == b.intersection(a)


@given(rects(), rects())
def test_union_contains_both(a: Rect, b: Rect):
    u = a.union(b)
    assert u.contains_rect(a)
    assert u.contains_rect(b)


@given(rects(), rects())
def test_union_area_at_least_max(a: Rect, b: Rect):
    assert a.union(b).area >= max(a.area, b.area) - 1e-9 * max(1.0, a.area, b.area)


@given(rects(), rects())
def test_enlargement_nonnegative(a: Rect, b: Rect):
    assert a.enlargement(b) >= -1e-6 * max(1.0, a.area)


@given(rects(), rects(), rects())
def test_union_associative_on_bounds(a: Rect, b: Rect, c: Rect):
    left = a.union(b).union(c)
    right = a.union(b.union(c))
    assert left == right


@given(rects())
def test_corners_inside_rect(a: Rect):
    for x, y in a.corners():
        assert a.contains_point(x, y)


@given(rects(), rects())
def test_intersection_points_never_exceed_four(a: Rect, b: Rect):
    assert classify_intersection_points(a, b).total <= 4


@given(rects(), rects())
def test_proper_overlap_yields_exactly_four_points(a: Rect, b: Rect):
    """Whenever the intersection has positive area and no edges align,
    the Figure 2 invariant holds: exactly 4 points."""
    inter = a.intersection(b)
    if inter is None or inter.area == 0:
        return
    # Skip configurations with shared edge coordinates (not in general
    # position — strict predicates legitimately miss boundary contacts).
    if {a.xmin, a.xmax} & {b.xmin, b.xmax} or {a.ymin, a.ymax} & {b.ymin, b.ymax}:
        return
    assert classify_intersection_points(a, b).total == 4


@given(rects(), coordinate, coordinate)
def test_translate_preserves_shape(a: Rect, dx: float, dy: float):
    moved = a.translate(dx, dy)
    assert math.isclose(moved.width, a.width, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(moved.height, a.height, rel_tol=1e-9, abs_tol=1e-6)
