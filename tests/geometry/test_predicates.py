"""Unit tests for geometry predicates beyond the Figure 2 case table."""

import numpy as np

from repro.geometry import (
    Rect,
    RectArray,
    count_corner_containments,
    count_edge_crossings,
    intersection_points,
    intersection_rect,
    pairwise_intersection_mask,
    rects_intersect,
)
from tests.conftest import random_rects


class TestScalarPredicates:
    def test_rects_intersect_delegates(self):
        assert rects_intersect(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3))
        assert not rects_intersect(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3))

    def test_intersection_rect(self):
        assert intersection_rect(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)) == Rect(1, 1, 2, 2)
        assert intersection_rect(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)) is None

    def test_intersection_points_are_intersection_corners(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)
        assert intersection_points(a, b) == Rect(1, 1, 2, 2).corners()

    def test_corner_containment_is_strict(self):
        # Corner exactly on the boundary does not count.
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 1, 2, 2)  # corner of b at (1,1) on a's boundary
        assert count_corner_containments(a, b) == 0

    def test_edge_crossing_requires_proper_crossing(self):
        # Vertical edge ending exactly on the horizontal edge: no crossing.
        a = Rect(0, 0.5, 2, 1.5)
        b = Rect(0.5, 0.0, 1.5, 0.5)  # b's top edge on a's bottom edge
        assert count_edge_crossings(a, b) == 0

    def test_crossing_band_has_four(self):
        a = Rect(0, 3, 10, 7)
        b = Rect(3, 0, 7, 10)
        assert count_edge_crossings(a, b) == 4
        assert count_corner_containments(a, b) == 0


class TestPairwiseMask:
    def test_matches_scalar_loop(self, rng):
        a = random_rects(rng, 40)
        b = random_rects(rng, 30)
        mask = pairwise_intersection_mask(a, b)
        assert mask.shape == (40, 30)
        for i in range(40):
            for j in range(30):
                assert mask[i, j] == a[i].intersects(b[j])

    def test_empty_inputs(self):
        mask = pairwise_intersection_mask(RectArray.empty(), RectArray.empty())
        assert mask.shape == (0, 0)

    def test_touching_counts_in_mask(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(1, 0, 2, 1)])
        assert pairwise_intersection_mask(a, b)[0, 0]

    def test_mask_dtype_is_bool(self, rng):
        a = random_rects(rng, 5)
        assert pairwise_intersection_mask(a, a).dtype == np.bool_
