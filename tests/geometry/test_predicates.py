"""Unit tests for geometry predicates beyond the Figure 2 case table."""

import numpy as np
import pytest

from repro.geometry import (
    Rect,
    RectArray,
    count_corner_containments,
    count_edge_crossings,
    intersection_points,
    intersection_rect,
    intervals_overlap,
    min_distance,
    pairwise_gap_squared,
    pairwise_intersection_mask,
    pairwise_interval_overlap_mask,
    pairwise_within_distance_mask,
    rects_intersect,
    rects_within_distance,
)
from tests.conftest import random_rects


class TestScalarPredicates:
    def test_rects_intersect_delegates(self):
        assert rects_intersect(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3))
        assert not rects_intersect(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3))

    def test_intersection_rect(self):
        assert intersection_rect(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)) == Rect(1, 1, 2, 2)
        assert intersection_rect(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)) is None

    def test_intersection_points_are_intersection_corners(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)
        assert intersection_points(a, b) == Rect(1, 1, 2, 2).corners()

    def test_corner_containment_is_strict(self):
        # Corner exactly on the boundary does not count.
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 1, 2, 2)  # corner of b at (1,1) on a's boundary
        assert count_corner_containments(a, b) == 0

    def test_edge_crossing_requires_proper_crossing(self):
        # Vertical edge ending exactly on the horizontal edge: no crossing.
        a = Rect(0, 0.5, 2, 1.5)
        b = Rect(0.5, 0.0, 1.5, 0.5)  # b's top edge on a's bottom edge
        assert count_edge_crossings(a, b) == 0

    def test_crossing_band_has_four(self):
        a = Rect(0, 3, 10, 7)
        b = Rect(3, 0, 7, 10)
        assert count_edge_crossings(a, b) == 4
        assert count_corner_containments(a, b) == 0


class TestPairwiseMask:
    def test_matches_scalar_loop(self, rng):
        a = random_rects(rng, 40)
        b = random_rects(rng, 30)
        mask = pairwise_intersection_mask(a, b)
        assert mask.shape == (40, 30)
        for i in range(40):
            for j in range(30):
                assert mask[i, j] == a[i].intersects(b[j])

    def test_empty_inputs(self):
        mask = pairwise_intersection_mask(RectArray.empty(), RectArray.empty())
        assert mask.shape == (0, 0)

    def test_touching_counts_in_mask(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(1, 0, 2, 1)])
        assert pairwise_intersection_mask(a, b)[0, 0]

    def test_mask_dtype_is_bool(self, rng):
        a = random_rects(rng, 5)
        assert pairwise_intersection_mask(a, a).dtype == np.bool_


# Distance table: (a, b, exact minimum L2 distance), all values exactly
# representable so boundary comparisons are not rounding accidents.
_DISTANCE_CASES = [
    ("overlapping", Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), 0.0),
    ("touching_edge", Rect(0, 0, 1, 1), Rect(1, 0, 2, 1), 0.0),
    ("touching_corner", Rect(0, 0, 1, 1), Rect(1, 1, 2, 2), 0.0),
    ("axis_gap", Rect(0, 0, 1, 1), Rect(1.5, 0, 2.5, 1), 0.5),
    ("vertical_gap", Rect(0, 0, 1, 1), Rect(0, 3, 1, 4), 2.0),
    ("diagonal_345", Rect(0, 0, 1, 1), Rect(4, 5, 5, 6), 5.0),
    ("point_to_point", Rect(0, 0, 0, 0), Rect(0.5, 0, 0.5, 0), 0.5),
    ("point_inside", Rect(0.25, 0.25, 0.25, 0.25), Rect(0, 0, 1, 1), 0.0),
]


class TestDistancePredicates:
    @pytest.mark.parametrize(
        "a, b, expected",
        [case[1:] for case in _DISTANCE_CASES],
        ids=[case[0] for case in _DISTANCE_CASES],
    )
    def test_min_distance_table(self, a, b, expected):
        assert min_distance(a, b) == expected
        assert min_distance(b, a) == expected  # symmetric
        # Closed semantics at the boundary: exactly-ε qualifies...
        assert rects_within_distance(a, b, expected)
        # ...and zero iff intersecting.
        assert (expected == 0.0) == rects_intersect(a, b)

    @pytest.mark.parametrize(
        "a, b, expected",
        [case[1:] for case in _DISTANCE_CASES if case[3] > 0],
        ids=[case[0] for case in _DISTANCE_CASES if case[3] > 0],
    )
    def test_within_distance_strictly_below(self, a, b, expected):
        assert not rects_within_distance(a, b, expected / 2.0)
        assert not rects_within_distance(a, b, 0.0)

    def test_eps_zero_is_the_intersection_test(self, rng):
        a, b = random_rects(rng, 30), random_rects(rng, 30)
        for i in range(30):
            assert rects_within_distance(a[i], b[i], 0.0) == a[i].intersects(b[i])

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError, match="eps"):
            rects_within_distance(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3), -0.5)
        with pytest.raises(ValueError, match="eps"):
            pairwise_within_distance_mask(RectArray.empty(), RectArray.empty(), -1.0)

    def test_pairwise_gap_squared_matches_scalar(self, rng):
        a, b = random_rects(rng, 25), random_rects(rng, 20)
        gaps = pairwise_gap_squared(a, b)
        assert gaps.shape == (25, 20)
        for i in range(25):
            for j in range(20):
                assert gaps[i, j] == pytest.approx(min_distance(a[i], b[j]) ** 2)

    def test_pairwise_within_mask_matches_scalar(self, rng):
        a, b = random_rects(rng, 25), random_rects(rng, 20)
        for eps in (0.0, 0.01, 0.1):
            mask = pairwise_within_distance_mask(a, b, eps)
            assert mask.dtype == np.bool_
            for i in range(25):
                for j in range(20):
                    assert mask[i, j] == rects_within_distance(a[i], b[j], eps)


# Interval table: closed overlap — shared endpoints count.
_INTERVAL_CASES = [
    ("overlap", (0.0, 2.0), (1.0, 3.0), True),
    ("shared_endpoint", (0.0, 1.0), (1.0, 2.0), True),
    ("disjoint", (0.0, 1.0), (1.5, 2.5), False),
    ("nested", (0.0, 4.0), (1.0, 2.0), True),
    ("identical", (0.5, 1.5), (0.5, 1.5), True),
    ("point_on_boundary", (0.0, 1.0), (1.0, 1.0), True),
    ("point_outside", (0.0, 1.0), (1.5, 1.5), False),
    ("coincident_points", (0.5, 0.5), (0.5, 0.5), True),
]


class TestIntervalPredicates:
    @pytest.mark.parametrize(
        "first, second, expected",
        [case[1:] for case in _INTERVAL_CASES],
        ids=[case[0] for case in _INTERVAL_CASES],
    )
    def test_intervals_overlap_table(self, first, second, expected):
        assert intervals_overlap(*first, *second) is expected
        assert intervals_overlap(*second, *first) is expected  # symmetric

    @pytest.mark.parametrize("axis", ["x", "y"])
    def test_pairwise_interval_mask_matches_scalar(self, rng, axis):
        a, b = random_rects(rng, 25), random_rects(rng, 20)
        mask = pairwise_interval_overlap_mask(a, b, axis)
        assert mask.dtype == np.bool_
        for i in range(25):
            for j in range(20):
                ra, rb = a[i], b[j]
                if axis == "x":
                    expected = intervals_overlap(ra.xmin, ra.xmax, rb.xmin, rb.xmax)
                else:
                    expected = intervals_overlap(ra.ymin, ra.ymax, rb.ymin, rb.ymax)
                assert mask[i, j] == expected

    def test_interval_mask_bad_axis(self):
        with pytest.raises(ValueError, match="axis"):
            pairwise_interval_overlap_mask(RectArray.empty(), RectArray.empty(), "z")

    def test_interval_masks_compose_to_intersection(self, rng):
        """x-overlap AND y-overlap == rectangle intersection, elementwise."""
        a, b = random_rects(rng, 30), random_rects(rng, 30)
        composed = pairwise_interval_overlap_mask(a, b, "x") & pairwise_interval_overlap_mask(a, b, "y")
        np.testing.assert_array_equal(composed, pairwise_intersection_mask(a, b))
