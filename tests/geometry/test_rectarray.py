"""Unit tests for the vectorized RectArray container."""

import numpy as np
import pytest

from repro.geometry import Rect, RectArray


def make_simple() -> RectArray:
    return RectArray.from_rects(
        [Rect(0, 0, 1, 1), Rect(2, 2, 3, 4), Rect(0.5, 0.5, 0.5, 0.5)]
    )


class TestConstruction:
    def test_empty(self):
        arr = RectArray.empty()
        assert len(arr) == 0
        assert list(arr) == []

    def test_from_rects_roundtrip(self):
        rects = [Rect(0, 0, 1, 1), Rect(2, 2, 3, 4)]
        arr = RectArray.from_rects(rects)
        assert list(arr) == rects

    def test_from_rects_empty_iterable(self):
        assert len(RectArray.from_rects([])) == 0

    def test_from_coords(self):
        arr = RectArray.from_coords([[0, 0, 1, 1], [1, 1, 2, 2]])
        assert arr[1] == Rect(1, 1, 2, 2)

    def test_from_coords_bad_shape(self):
        with pytest.raises(ValueError):
            RectArray.from_coords(np.zeros((3, 3)))

    def test_from_coords_empty(self):
        assert len(RectArray.from_coords(np.empty((0, 4)))) == 0

    def test_from_centers(self):
        arr = RectArray.from_centers(np.array([1.0]), np.array([2.0]), 0.5, 1.0)
        assert arr[0] == Rect(0.75, 1.5, 1.25, 2.5)

    def test_from_centers_rejects_negative_size(self):
        with pytest.raises(ValueError):
            RectArray.from_centers(np.array([0.0]), np.array([0.0]), -1.0, 1.0)

    def test_from_points_zero_area(self):
        arr = RectArray.from_points(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert np.all(arr.areas() == 0)
        assert arr[0].is_point

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RectArray(np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2))

    def test_invalid_rectangle_rejected_with_index(self):
        with pytest.raises(ValueError, match="index 1"):
            RectArray(
                np.array([0.0, 5.0]),
                np.array([0.0, 0.0]),
                np.array([1.0, 1.0]),
                np.array([1.0, 1.0]),
            )

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            RectArray(
                np.array([np.nan]), np.array([0.0]), np.array([1.0]), np.array([1.0])
            )

    def test_concatenate(self):
        a = make_simple()
        merged = RectArray.concatenate([a, a])
        assert len(merged) == 2 * len(a)
        assert merged[len(a)] == a[0]

    def test_concatenate_empty_list(self):
        assert len(RectArray.concatenate([])) == 0


class TestContainerProtocol:
    def test_int_index_returns_rect(self):
        assert isinstance(make_simple()[0], Rect)

    def test_negative_index(self):
        arr = make_simple()
        assert arr[-1] == arr[len(arr) - 1]

    def test_slice_returns_rectarray(self):
        sub = make_simple()[:2]
        assert isinstance(sub, RectArray)
        assert len(sub) == 2

    def test_mask_index(self):
        arr = make_simple()
        mask = np.array([True, False, True])
        assert len(arr[mask]) == 2

    def test_fancy_index(self):
        arr = make_simple()
        sub = arr[np.array([2, 0])]
        assert sub[0] == arr[2]
        assert sub[1] == arr[0]

    def test_equality(self):
        assert make_simple() == make_simple()
        assert make_simple() != make_simple()[:2]

    def test_repr_contains_length(self):
        assert "n=3" in repr(make_simple())


class TestDerived:
    def test_widths_heights_areas(self):
        arr = make_simple()
        assert np.allclose(arr.widths(), [1, 1, 0])
        assert np.allclose(arr.heights(), [1, 2, 0])
        assert np.allclose(arr.areas(), [1, 2, 0])

    def test_centers(self):
        cx, cy = make_simple().centers()
        assert np.allclose(cx, [0.5, 2.5, 0.5])
        assert np.allclose(cy, [0.5, 3.0, 0.5])

    def test_total_area(self):
        assert make_simple().total_area() == pytest.approx(3.0)

    def test_bounds(self):
        assert make_simple().bounds() == Rect(0, 0, 3, 4)

    def test_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            RectArray.empty().bounds()

    def test_as_coords_roundtrip(self):
        arr = make_simple()
        assert RectArray.from_coords(arr.as_coords()) == arr


class TestVectorizedPredicates:
    def test_intersects_rect_matches_scalar(self, rng):
        from tests.conftest import random_rects

        arr = random_rects(rng, 100)
        query = Rect(0.2, 0.3, 0.6, 0.7)
        mask = arr.intersects_rect(query)
        expected = np.array([r.intersects(query) for r in arr])
        assert np.array_equal(mask, expected)

    def test_contained_in_rect_matches_scalar(self, rng):
        from tests.conftest import random_rects

        arr = random_rects(rng, 100)
        query = Rect(0.2, 0.3, 0.6, 0.7)
        mask = arr.contained_in_rect(query)
        expected = np.array([query.contains_rect(r) for r in arr])
        assert np.array_equal(mask, expected)

    def test_clip_to(self):
        arr = RectArray.from_rects([Rect(0, 0, 2, 2)])
        clipped = arr.clip_to(Rect(1, 1, 3, 3))
        assert clipped[0] == Rect(1, 1, 2, 2)

    def test_clip_to_disjoint_raises(self):
        arr = RectArray.from_rects([Rect(0, 0, 1, 1)])
        with pytest.raises(ValueError):
            arr.clip_to(Rect(2, 2, 3, 3))

    def test_translate(self):
        moved = make_simple().translate(1, -1)
        assert moved[0] == Rect(1, -1, 2, 0)

    def test_scale(self):
        scaled = make_simple().scale(2)
        assert scaled[0] == Rect(0, 0, 2, 2)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            make_simple().scale(-1)
