"""The paper's Figure 2: the twelve ways two rectangles can intersect.

The GH scheme rests on the observation that every proper intersection
yields exactly four "intersecting points", each produced either by a
corner of one MBR inside the other (source a) or by a horizontal edge of
one crossing a vertical edge of the other (source b).  These tests
enumerate all twelve Figure 2 configurations and check the per-source
counts the paper states for each.
"""

import pytest

from repro.geometry import Rect, classify_intersection_points, intersection_points

# Each case: (rect_a, rect_b, corner_points, crossing_points) with the
# counts taken from the paper's description of Figure 2:
#   cases 1-4:   2 corner points + 2 crossings   (corner overlap)
#   cases 5-6:   0 corners + 4 crossings          (cross / band overlap)
#   cases 7-10:  2 corners + 2 crossings          (edge-through overlap)
#   cases 11-12: 4 corners + 0 crossings          (containment)
B = Rect(0.0, 0.0, 10.0, 10.0)

FIGURE2_CASES = [
    # 1-4: one corner of A inside B (four orientations).
    ("case01_corner_ll", Rect(-5, -5, 3, 3), B, 2, 2),
    ("case02_corner_lr", Rect(7, -5, 15, 3), B, 2, 2),
    ("case03_corner_ur", Rect(7, 7, 15, 15), B, 2, 2),
    ("case04_corner_ul", Rect(-5, 7, 3, 15), B, 2, 2),
    # 5-6: A spans B in one axis and sticks out on the other (a "cross").
    ("case05_vertical_band", Rect(3, -5, 7, 15), B, 0, 4),
    ("case06_horizontal_band", Rect(-5, 3, 15, 7), B, 0, 4),
    # 7-10: one side of A cuts through B (two corners of A inside B).
    ("case07_from_left", Rect(-5, 3, 4, 7), B, 2, 2),
    ("case08_from_right", Rect(6, 3, 15, 7), B, 2, 2),
    ("case09_from_below", Rect(3, -5, 7, 4), B, 2, 2),
    ("case10_from_above", Rect(3, 6, 7, 15), B, 2, 2),
    # 11-12: containment (either direction).
    ("case11_a_inside_b", Rect(3, 3, 7, 7), B, 4, 0),
    ("case12_b_inside_a", Rect(-5, -5, 15, 15), B, 4, 0),
]


@pytest.mark.parametrize(
    "name,a,b,corners,crossings", FIGURE2_CASES, ids=[c[0] for c in FIGURE2_CASES]
)
class TestFigure2:
    def test_breakdown_counts(self, name, a, b, corners, crossings):
        breakdown = classify_intersection_points(a, b)
        assert breakdown.corner_points == corners
        assert breakdown.crossing_points == crossings

    def test_total_is_four(self, name, a, b, corners, crossings):
        assert classify_intersection_points(a, b).total == 4

    def test_symmetry(self, name, a, b, corners, crossings):
        forward = classify_intersection_points(a, b)
        backward = classify_intersection_points(b, a)
        assert forward == backward

    def test_intersection_has_four_corner_points(self, name, a, b, corners, crossings):
        assert len(intersection_points(a, b)) == 4


class TestDegenerateConfigurations:
    """Configurations outside Figure 2's general position."""

    def test_disjoint_pair_has_no_points(self):
        breakdown = classify_intersection_points(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6))
        assert breakdown.total == 0
        assert intersection_points(Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)) == ()

    def test_touching_edges_are_not_proper_points(self):
        # Touching rectangles intersect but produce no *proper* corner
        # containments or crossings (all contacts are on boundaries).
        a, b = Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)
        assert a.intersects(b)
        assert classify_intersection_points(a, b).total == 0

    def test_identical_rects(self):
        r = Rect(0, 0, 1, 1)
        # Shared boundaries: no strict containments, no proper crossings.
        assert classify_intersection_points(r, r).total == 0

    def test_point_inside_rect_counts_four_corner_points(self):
        point = Rect.point(5, 5)
        breakdown = classify_intersection_points(point, B)
        assert breakdown.corner_points == 4
        assert breakdown.crossing_points == 0
