"""Unit tests for the Rect value type."""

import math

import pytest

from repro.geometry import Rect


class TestConstruction:
    def test_basic_fields(self):
        r = Rect(1.0, 2.0, 3.0, 5.0)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (1.0, 2.0, 3.0, 5.0)

    def test_rejects_inverted_x(self):
        with pytest.raises(ValueError):
            Rect(2.0, 0.0, 1.0, 1.0)

    def test_rejects_inverted_y(self):
        with pytest.raises(ValueError):
            Rect(0.0, 2.0, 1.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Rect(math.nan, 0.0, 1.0, 1.0)

    def test_degenerate_point_allowed(self):
        r = Rect(0.5, 0.5, 0.5, 0.5)
        assert r.is_point
        assert r.is_degenerate
        assert r.area == 0.0

    def test_degenerate_segment_allowed(self):
        r = Rect(0.0, 0.5, 1.0, 0.5)
        assert not r.is_point
        assert r.is_degenerate

    def test_from_center(self):
        r = Rect.from_center(0.5, 0.5, 0.2, 0.4)
        assert r.as_tuple() == pytest.approx((0.4, 0.3, 0.6, 0.7))

    def test_from_center_rejects_negative_sides(self):
        with pytest.raises(ValueError):
            Rect.from_center(0.0, 0.0, -1.0, 1.0)

    def test_from_points_normalizes_order(self):
        assert Rect.from_points(3, 4, 1, 2) == Rect(1, 2, 3, 4)

    def test_point_constructor(self):
        assert Rect.point(0.3, 0.7) == Rect(0.3, 0.7, 0.3, 0.7)

    def test_unit(self):
        assert Rect.unit() == Rect(0, 0, 1, 1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Rect.unit().xmin = 5  # type: ignore[misc]


class TestMeasures:
    def test_width_height_area(self):
        r = Rect(0, 0, 2, 3)
        assert r.width == 2
        assert r.height == 3
        assert r.area == 6
        assert r.perimeter == 10

    def test_center(self):
        assert Rect(0, 0, 2, 4).center == (1.0, 2.0)

    def test_corners_order(self):
        r = Rect(0, 0, 1, 2)
        assert r.corners() == ((0, 0), (1, 0), (1, 2), (0, 2))

    def test_point_has_four_coincident_corners(self):
        assert Rect.point(1, 1).corners() == ((1, 1),) * 4


class TestPredicates:
    def test_intersects_overlap(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_intersects_is_symmetric(self):
        a, b = Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)
        assert a.intersects(b) == b.intersects(a)

    def test_touching_edge_counts(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_touching_corner_counts(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_disjoint_in_y_only(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(0, 2, 1, 3))

    def test_contains_point_interior_and_boundary(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0.0, 0.0)
        assert r.contains_point(1.0, 1.0)
        assert not r.contains_point(1.1, 0.5)

    def test_contains_rect(self):
        outer = Rect(0, 0, 4, 4)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(3, 3, 5, 5))

    def test_point_intersects_containing_rect(self):
        assert Rect.point(0.5, 0.5).intersects(Rect(0, 0, 1, 1))


class TestCombinators:
    def test_intersection_basic(self):
        inter = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert inter == Rect(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_touching_is_degenerate(self):
        inter = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert inter is not None
        assert inter.is_degenerate
        assert inter.width == 0.0

    def test_intersection_contained(self):
        inner = Rect(1, 1, 2, 2)
        assert Rect(0, 0, 4, 4).intersection(inner) == inner

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_union_contains_both(self):
        a, b = Rect(0, 0, 1, 2), Rect(-1, 1, 0.5, 3)
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    def test_enlargement_zero_when_contained(self):
        assert Rect(0, 0, 4, 4).enlargement(Rect(1, 1, 2, 2)) == 0.0

    def test_enlargement_positive_when_growing(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(2, 0, 3, 1)) == pytest.approx(2.0)

    def test_translate(self):
        assert Rect(0, 0, 1, 1).translate(2, 3) == Rect(2, 3, 3, 4)

    def test_scale_uniform(self):
        assert Rect(1, 1, 2, 2).scale(2) == Rect(2, 2, 4, 4)

    def test_scale_anisotropic(self):
        assert Rect(1, 1, 2, 2).scale(2, 3) == Rect(2, 3, 4, 6)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).scale(-1)

    def test_buffer_grow(self):
        assert Rect(0, 0, 1, 1).buffer(0.5) == Rect(-0.5, -0.5, 1.5, 1.5)

    def test_buffer_shrink(self):
        assert Rect(0, 0, 2, 2).buffer(-0.5) == Rect(0.5, 0.5, 1.5, 1.5)

    def test_buffer_overshrink_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).buffer(-0.6)


class TestProtocol:
    def test_as_tuple_and_iter(self):
        r = Rect(0, 1, 2, 3)
        assert r.as_tuple() == (0, 1, 2, 3)
        assert tuple(r) == (0, 1, 2, 3)

    def test_equality_and_hash(self):
        assert Rect(0, 0, 1, 1) == Rect(0, 0, 1, 1)
        assert hash(Rect(0, 0, 1, 1)) == hash(Rect(0, 0, 1, 1))
        assert Rect(0, 0, 1, 1) != Rect(0, 0, 1, 2)
