"""Unit tests for extent computation and normalization."""

import numpy as np
import pytest

from repro.geometry import (
    NormalizationTransform,
    Rect,
    RectArray,
    common_extent,
    normalize_to_unit,
    pad_extent,
)
from tests.conftest import random_rects


class TestCommonExtent:
    def test_single_array(self):
        arr = RectArray.from_rects([Rect(1, 2, 3, 4), Rect(0, 3, 2, 5)])
        assert common_extent(arr) == Rect(0, 2, 3, 5)

    def test_multiple_arrays(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        b = RectArray.from_rects([Rect(5, 5, 6, 6)])
        assert common_extent(a, b) == Rect(0, 0, 6, 6)

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            common_extent(RectArray.empty())

    def test_ignores_empty_arrays(self):
        a = RectArray.from_rects([Rect(0, 0, 1, 1)])
        assert common_extent(a, RectArray.empty()) == Rect(0, 0, 1, 1)

    def test_pad_fraction(self):
        arr = RectArray.from_rects([Rect(0, 0, 10, 10)])
        padded = common_extent(arr, pad_fraction=0.1)
        assert padded == Rect(-1, -1, 11, 11)

    def test_degenerate_extent_widened(self):
        # All data on one point: extent must still have positive area.
        arr = RectArray.from_points(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        extent = common_extent(arr)
        assert extent.width > 0 and extent.height > 0
        assert extent.contains_point(2.0, 3.0)

    def test_degenerate_line_widened(self):
        arr = RectArray.from_rects([Rect(0, 1, 5, 1)])
        extent = common_extent(arr)
        assert extent.height > 0


class TestPadExtent:
    def test_pad(self):
        assert pad_extent(Rect(0, 0, 2, 4), 0.5) == Rect(-1, -2, 3, 6)

    def test_zero_pad_identity(self):
        r = Rect(0, 0, 1, 1)
        assert pad_extent(r, 0.0) == r

    def test_negative_pad_rejected(self):
        with pytest.raises(ValueError):
            pad_extent(Rect(0, 0, 1, 1), -0.1)


class TestNormalizationTransform:
    def test_maps_source_onto_unit(self):
        tf = NormalizationTransform(Rect(10, 20, 30, 60))
        arr = RectArray.from_rects([Rect(10, 20, 30, 60)])
        out = tf.apply(arr)
        assert out[0] == Rect(0, 0, 1, 1)

    def test_apply_rect(self):
        tf = NormalizationTransform(Rect(0, 0, 2, 2))
        assert tf.apply_rect(Rect(1, 1, 2, 2)) == Rect(0.5, 0.5, 1, 1)

    def test_round_trip(self, rng):
        arr = random_rects(rng, 50, extent=Rect(-3, 7, 12, 19))
        tf = NormalizationTransform(Rect(-3, 7, 12, 19))
        back = tf.invert(tf.apply(arr))
        assert np.allclose(back.xmin, arr.xmin)
        assert np.allclose(back.ymax, arr.ymax)

    def test_selectivity_invariance(self, rng):
        # Normalization is a bijection on pairs: join counts are unchanged.
        from repro.join import nested_loop_count

        a = random_rects(rng, 150, extent=Rect(100, 200, 300, 500))
        b = random_rects(rng, 150, extent=Rect(100, 200, 300, 500))
        tf = NormalizationTransform(Rect(100, 200, 300, 500))
        assert nested_loop_count(a, b) == nested_loop_count(tf.apply(a), tf.apply(b))

    def test_degenerate_source_widened(self):
        tf = NormalizationTransform(Rect(1, 1, 1, 5))
        assert tf.source.width > 0


class TestNormalizeToUnit:
    def test_shared_transform(self, rng):
        a = random_rects(rng, 20, extent=Rect(0, 0, 4, 4))
        b = random_rects(rng, 20, extent=Rect(2, 2, 8, 8))
        (na, nb), tf = normalize_to_unit(a, b)
        merged = RectArray.concatenate([na, nb])
        bounds = merged.bounds()
        assert bounds.xmin >= 0 and bounds.ymin >= 0
        assert bounds.xmax <= 1 + 1e-12 and bounds.ymax <= 1 + 1e-12
        assert tf.source == common_extent(a, b)
