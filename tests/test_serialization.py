"""Pickle-ability of the public value types.

Deployments fan statistics out across processes (parallel builds,
multiprocessing optimizers), so the catalog-able objects must survive
pickling.
"""

import pickle

import numpy as np
import pytest

from repro.core import GHEstimator, ParametricEstimator, PHEstimator
from repro.datasets import SpatialDataset, make_uniform
from repro.geometry import Rect
from repro.histograms import BasicGHHistogram, GHHistogram, PHHistogram
from repro.sampling import SamplingJoinEstimator


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestGeometryPickling:
    def test_rect(self):
        r = Rect(0.1, 0.2, 0.3, 0.4)
        assert roundtrip(r) == r

    def test_rectarray(self, rng):
        from tests.conftest import random_rects

        arr = random_rects(rng, 50)
        back = roundtrip(arr)
        assert back == arr


class TestDatasetPickling:
    def test_dataset(self):
        ds = make_uniform(100, seed=0)
        back = roundtrip(ds)
        assert back.name == ds.name
        assert back.rects == ds.rects
        assert back.extent == ds.extent


class TestHistogramPickling:
    @pytest.mark.parametrize("hist_cls", [PHHistogram, GHHistogram, BasicGHHistogram])
    def test_histograms(self, hist_cls):
        ds = make_uniform(200, seed=1)
        hist = hist_cls.build(ds, 3)
        back = roundtrip(hist)
        assert back.grid == hist.grid
        assert back.count == hist.count
        assert back.estimate_selectivity(hist) == hist.estimate_selectivity(hist)


class TestEstimatorPickling:
    @pytest.mark.parametrize(
        "estimator",
        [ParametricEstimator(), PHEstimator(3), GHEstimator(5),
         SamplingJoinEstimator("rswr", 0.2, 0.2, seed=1)],
        ids=lambda e: type(e).__name__,
    )
    def test_estimators(self, estimator):
        a = make_uniform(300, seed=2)
        b = make_uniform(300, seed=3)
        back = roundtrip(estimator)
        assert back.estimate(a, b) == estimator.estimate(a, b)


class TestCrossProcessScenario:
    def test_parallel_shard_build_via_pickle(self):
        """Simulate the merge-of-shards flow through pickled histograms."""
        from repro.histograms import merge_histograms

        ds = make_uniform(400, seed=4)
        half1 = SpatialDataset("h1", ds.rects[np.arange(200)], ds.extent)
        half2 = SpatialDataset("h2", ds.rects[np.arange(200, 400)], ds.extent)
        shard1 = roundtrip(GHHistogram.build(half1, 3))
        shard2 = roundtrip(GHHistogram.build(half2, 3))
        merged = merge_histograms(shard1, shard2)
        direct = GHHistogram.build(ds, 3)
        assert np.allclose(merged.c, direct.c)
