"""Unit tests for the Aref–Samet parametric baseline (Equations 1–2)."""

import pytest

from repro.datasets import DatasetSummary, SpatialDataset, make_uniform
from repro.geometry import Rect, RectArray
from repro.histograms import (
    aref_samet_selectivity,
    aref_samet_size,
    parametric_selectivity,
)
from repro.join import actual_selectivity


def summary(n, cov, w, h, area=1.0) -> DatasetSummary:
    return DatasetSummary(count=n, coverage=cov, avg_width=w, avg_height=h, extent_area=area)


class TestEquationOne:
    def test_formula_verbatim(self):
        s1 = summary(10, 0.2, 0.1, 0.05)
        s2 = summary(20, 0.3, 0.02, 0.04)
        expected = 10 * 0.3 + 0.2 * 20 + 10 * 20 * (0.1 * 0.04 + 0.02 * 0.05) / 1.0
        assert aref_samet_size(s1, s2) == pytest.approx(expected)

    def test_symmetric(self):
        s1 = summary(10, 0.2, 0.1, 0.05)
        s2 = summary(20, 0.3, 0.02, 0.04)
        assert aref_samet_size(s1, s2) == pytest.approx(aref_samet_size(s2, s1))

    def test_point_datasets_zero_size(self):
        """Two point datasets: all terms vanish (points never intersect
        with probability > 0 under the continuous model)."""
        s1 = summary(100, 0.0, 0.0, 0.0)
        s2 = summary(100, 0.0, 0.0, 0.0)
        assert aref_samet_size(s1, s2) == 0.0

    def test_extent_mismatch_rejected(self):
        with pytest.raises(ValueError, match="common extent"):
            aref_samet_size(summary(1, 0, 0, 0, area=1.0), summary(1, 0, 0, 0, area=2.0))

    def test_zero_area_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            aref_samet_size(summary(1, 0, 0, 0, area=0.0), summary(1, 0, 0, 0, area=0.0))


class TestSelectivity:
    def test_normalization(self):
        s1 = summary(10, 0.2, 0.1, 0.05)
        s2 = summary(20, 0.3, 0.02, 0.04)
        assert aref_samet_selectivity(s1, s2) == pytest.approx(
            aref_samet_size(s1, s2) / 200
        )

    def test_empty_dataset_zero(self):
        assert aref_samet_selectivity(summary(0, 0, 0, 0), summary(5, 0.1, 0.1, 0.1)) == 0.0

    def test_exact_for_known_pair(self):
        """One unit-square rect vs one unit-square rect: estimate is
        N1*C2 + C1*N2 + cross = 1 + 1 + 2 = 4 intersections (the formula
        overcounts at the boundary, as expected for coverage ~1), i.e.
        the formula is evaluated, not clamped."""
        big = RectArray.from_rects([Rect(0, 0, 1, 1)])
        ds1 = SpatialDataset("a", big)
        ds2 = SpatialDataset("b", big)
        assert parametric_selectivity(ds1, ds2) == pytest.approx(4.0)


class TestAccuracyOnUniformData:
    def test_close_to_truth_on_uniform(self):
        """The paper's premise: the parametric model is good exactly when
        its uniformity assumption holds."""
        a = make_uniform(4000, seed=1, mean_width=0.01, mean_height=0.01)
        b = make_uniform(4000, seed=2, mean_width=0.01, mean_height=0.01)
        est = parametric_selectivity(a, b)
        truth = actual_selectivity(a.rects, b.rects)
        assert est == pytest.approx(truth, rel=0.1)

    def test_poor_on_clustered(self):
        """...and bad when the data is skewed (motivates PH/GH)."""
        from repro.datasets import make_clustered

        a = make_clustered(4000, seed=1, spread=0.03)
        b = make_clustered(4000, seed=2, spread=0.03)
        est = parametric_selectivity(a, b)
        truth = actual_selectivity(a.rects, b.rects)
        assert abs(est - truth) / truth > 0.5  # >50% off

    def test_dataset_extent_mismatch(self):
        a = SpatialDataset("a", RectArray.from_rects([Rect(0, 0, 1, 1)]), Rect(0, 0, 2, 2))
        b = SpatialDataset("b", RectArray.from_rects([Rect(0, 0, 1, 1)]), Rect.unit())
        with pytest.raises(ValueError):
            parametric_selectivity(a, b)
