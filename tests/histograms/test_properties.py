"""Property-based tests for the histogram schemes (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import SpatialDataset
from repro.geometry import Rect, RectArray
from repro.histograms import BasicGHHistogram, GHHistogram, PHHistogram

coords = st.floats(min_value=0, max_value=1, allow_nan=False)
levels = st.integers(min_value=0, max_value=4)


@st.composite
def datasets(draw, max_size=40):
    n = draw(st.integers(min_value=0, max_value=max_size))
    rects = [
        Rect.from_points(draw(coords), draw(coords), draw(coords), draw(coords))
        for _ in range(n)
    ]
    return SpatialDataset("prop", RectArray.from_rects(rects), Rect.unit())


@settings(max_examples=50, deadline=None)
@given(datasets(), levels)
def test_gh_corner_conservation(ds, level):
    hist = GHHistogram.build(ds, level)
    assert hist.c.sum() == 4 * len(ds)


@settings(max_examples=50, deadline=None)
@given(datasets(), levels)
def test_gh_area_conservation(ds, level):
    hist = GHHistogram.build(ds, level)
    assert hist.o.sum() * hist.grid.cell_area == pytest.approx(
        ds.rects.total_area(), abs=1e-9
    )


@settings(max_examples=50, deadline=None)
@given(datasets(), levels)
def test_gh_edge_conservation(ds, level):
    hist = GHHistogram.build(ds, level)
    assert hist.h.sum() * hist.grid.cell_width == pytest.approx(
        2 * float(ds.rects.widths().sum()), abs=1e-9
    )
    assert hist.v.sum() * hist.grid.cell_height == pytest.approx(
        2 * float(ds.rects.heights().sum()), abs=1e-9
    )


@settings(max_examples=50, deadline=None)
@given(datasets(), datasets(), levels)
def test_gh_estimate_nonnegative_and_symmetric(ds1, ds2, level):
    h1 = GHHistogram.build(ds1, level)
    h2 = GHHistogram.build(ds2, level)
    est = h1.estimate_selectivity(h2)
    assert est >= 0
    assert est == pytest.approx(h2.estimate_selectivity(h1))


@settings(max_examples=50, deadline=None)
@given(datasets(), levels)
def test_ph_item_conservation(ds, level):
    hist = PHHistogram.build(ds, level)
    grid = hist.grid
    contained = grid.contained_mask(ds.rects) if len(ds) else np.array([], dtype=bool)
    assert hist.num.sum() == contained.sum()
    # Contained + boundary-crossing incidences account for every rect.
    if len(ds):
        spans = grid.span_counts(ds.rects[~contained])
        assert hist.num_i.sum() == spans.sum()


@settings(max_examples=50, deadline=None)
@given(datasets(), levels)
def test_ph_coverage_conservation(ds, level):
    hist = PHHistogram.build(ds, level)
    total = (hist.cov + hist.cov_i).sum() * hist.grid.cell_area
    assert total == pytest.approx(ds.rects.total_area(), abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(datasets(), datasets(), levels)
def test_ph_estimate_nonnegative_and_symmetric(ds1, ds2, level):
    h1 = PHHistogram.build(ds1, level)
    h2 = PHHistogram.build(ds2, level)
    est = h1.estimate_selectivity(h2)
    assert est >= 0
    assert est == pytest.approx(h2.estimate_selectivity(h1))


@settings(max_examples=50, deadline=None)
@given(datasets(), datasets(), levels)
def test_basic_gh_upper_bounds_revised(ds1, ds2, level):
    """Raw counts >= uniformity-weighted ratios cellwise: basic GH never
    estimates below revised GH (each basic factor dominates its revised
    counterpart: counts vs ratios in [0, count])."""
    b1 = BasicGHHistogram.build(ds1, level)
    b2 = BasicGHHistogram.build(ds2, level)
    g1 = GHHistogram.build(ds1, level)
    g2 = GHHistogram.build(ds2, level)
    assert b1.estimate_intersection_points(b2) >= g1.estimate_intersection_points(
        g2
    ) - 1e-9


@settings(max_examples=30, deadline=None)
@given(datasets(max_size=25), datasets(max_size=25))
def test_gh_exact_at_fine_level_for_separated_data(ds1, ds2):
    """When an exhaustive grid isolates every intersection point in its
    own cell and data is in 'general position', Eq. 5's within-cell
    ratios make the estimate track closed-form probabilities; we check
    the weaker but exact property that disjoint datasets estimate 0."""
    ds2_shifted = SpatialDataset(
        "shifted",
        ds2.rects.scale(0.4).translate(0.6, 0.6),
        Rect.unit(),
    )
    ds1_shrunk = SpatialDataset("shrunk", ds1.rects.scale(0.4), Rect.unit())
    h1 = GHHistogram.build(ds1_shrunk, 1)
    h2 = GHHistogram.build(ds2_shifted, 1)
    # ds1 lives in [0, 0.4]^2, ds2 in [0.6, 1]^2: disjoint cells at level 1.
    assert h1.estimate_selectivity(h2) == 0.0
