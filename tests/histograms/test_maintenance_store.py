"""Catalog coherence of incremental maintenance (ISSUE 7, satellite).

A mutated dataset has a new fingerprint: the old artifact must leave
the catalog (or ``verify`` chases ghosts) and the maintained result may
be republished under the *new* dataset's key.  These are regression
tests for the ``store=`` hooks on ``apply_updates``/``merge_histograms``.
"""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.geometry import RectArray
from repro.histograms import GHHistogram
from repro.histograms.file import histogram_parts
from repro.histograms.maintenance import apply_updates, merge_histograms
from repro.perf import HistogramCache
from repro.store import ArtifactCatalog
from tests.conftest import random_rects


@pytest.fixture
def store(tmp_path):
    return ArtifactCatalog(tmp_path / "store")


def concat(a: RectArray, b: RectArray) -> RectArray:
    return RectArray(
        np.concatenate([a.xmin, b.xmin]),
        np.concatenate([a.ymin, b.ymin]),
        np.concatenate([a.xmax, b.xmax]),
        np.concatenate([a.ymax, b.ymax]),
    )


class TestApplyUpdates:
    def test_stale_key_leaves_and_new_key_arrives(self, store, rng):
        base = random_rects(rng, 150)
        extra = random_rects(rng, 30)
        old_ds = SpatialDataset("t", base)
        old_key = HistogramCache.key_for(old_ds, "gh", 5)
        hist = GHHistogram.build(old_ds, 5)
        store.put_histogram(old_key, hist)

        new_ds = SpatialDataset("t", concat(base, extra), old_ds.extent)
        new_key = HistogramCache.key_for(new_ds, "gh", 5, old_ds.extent)
        updated = apply_updates(
            hist, added=extra, store=store,
            stale_key=old_key, republish_key=new_key,
        )
        assert store.load_histogram(old_key) is None  # stale entry is gone
        assert store.stats.invalidations == 1
        republished = store.load_histogram(new_key)
        assert republished is not None
        _, stats_a = histogram_parts(updated)
        _, stats_b = histogram_parts(republished)
        assert np.array_equal(stats_a, stats_b)

    def test_keys_without_a_store_are_an_error(self, rng):
        ds = SpatialDataset("t", random_rects(rng, 50))
        key = HistogramCache.key_for(ds, "gh", 4)
        hist = GHHistogram.build(ds, 4)
        with pytest.raises(ValueError, match="need a store"):
            apply_updates(hist, added=random_rects(rng, 5), stale_key=key)

    def test_storeless_call_is_unchanged(self, rng):
        ds = SpatialDataset("t", random_rects(rng, 50))
        hist = GHHistogram.build(ds, 4)
        extra = random_rects(rng, 10)
        with_store_args = apply_updates(hist, added=extra)
        assert with_store_args.count == hist.count + 10


class TestMergeHistograms:
    def test_partition_keys_retire_into_the_union_key(self, store, rng):
        left, right = random_rects(rng, 80), random_rects(rng, 90)
        union = concat(left, right)
        union_ds = SpatialDataset("u", union)
        extent = union_ds.extent
        parts = [SpatialDataset("u", r, extent) for r in (left, right)]
        keys = [HistogramCache.key_for(ds, "gh", 4, extent) for ds in parts]
        hists = [GHHistogram.build(ds, 4, extent=extent) for ds in parts]
        for key, hist in zip(keys, hists):
            store.put_histogram(key, hist)

        union_key = HistogramCache.key_for(union_ds, "gh", 4, extent)
        merged = merge_histograms(
            hists[0], hists[1], store=store,
            stale_keys=tuple(keys), republish_key=union_key,
        )
        assert all(store.load_histogram(k) is None for k in keys)
        assert store.stats.invalidations == 2
        republished = store.load_histogram(union_key)
        _, stats_a = histogram_parts(merged)
        _, stats_b = histogram_parts(republished)
        assert np.array_equal(stats_a, stats_b)
        # The republished artifact equals a from-scratch union build.
        fresh = GHHistogram.build(union_ds, 4, extent=extent)
        _, stats_c = histogram_parts(fresh)
        assert np.allclose(stats_b, stats_c)
