"""Unit tests for range-query estimation from the histogram files."""

import pytest

from repro.datasets import SpatialDataset, make_clustered, make_uniform
from repro.geometry import Rect, RectArray
from repro.histograms import (
    GHHistogram,
    PHHistogram,
    range_count_gh,
    range_count_parametric,
    range_count_ph,
)


@pytest.fixture(scope="module")
def uniform_ds():
    return make_uniform(8000, seed=50, mean_width=0.01, mean_height=0.01)


@pytest.fixture(scope="module")
def clustered_ds():
    return make_clustered(8000, seed=51, spread=0.08)


def true_count(ds, query: Rect) -> int:
    return int(ds.rects.intersects_rect(query).sum())


QUERIES = [
    Rect(0.1, 0.1, 0.4, 0.3),
    Rect(0.35, 0.55, 0.75, 0.95),
    Rect(0.0, 0.0, 1.0, 1.0),
    Rect(0.48, 0.48, 0.52, 0.52),
]


class TestGHRangeCount:
    @pytest.mark.parametrize("query", QUERIES)
    def test_accurate_on_uniform(self, uniform_ds, query):
        hist = GHHistogram.build(uniform_ds, 6)
        estimate = range_count_gh(hist, query)
        truth = true_count(uniform_ds, query)
        assert estimate == pytest.approx(truth, rel=0.15, abs=5)

    def test_accurate_on_clustered(self, clustered_ds):
        hist = GHHistogram.build(clustered_ds, 6)
        query = Rect(0.3, 0.6, 0.5, 0.8)  # inside the cluster
        estimate = range_count_gh(hist, query)
        truth = true_count(clustered_ds, query)
        assert estimate == pytest.approx(truth, rel=0.25)

    def test_empty_region_near_zero(self, clustered_ds):
        hist = GHHistogram.build(clustered_ds, 6)
        # Far corner away from the (0.4, 0.7) cluster.
        estimate = range_count_gh(hist, Rect(0.9, 0.02, 0.98, 0.1))
        assert estimate < 0.05 * len(clustered_ds)

    def test_whole_extent_counts_everything(self, uniform_ds):
        hist = GHHistogram.build(uniform_ds, 5)
        estimate = range_count_gh(hist, Rect.unit())
        assert estimate == pytest.approx(len(uniform_ds), rel=0.05)

    def test_point_query(self, uniform_ds):
        hist = GHHistogram.build(uniform_ds, 6)
        estimate = range_count_gh(hist, Rect.point(0.5, 0.5))
        truth = true_count(uniform_ds, Rect.point(0.5, 0.5))
        # Expected stabbing count: small but positive.
        assert 0 <= estimate < 50
        assert abs(estimate - truth) < 20

    def test_matches_join_with_singleton(self, uniform_ds):
        """Range estimation is the singleton-join specialization: the
        sparse path must agree with building a full histogram for {q}."""
        query = Rect(0.2, 0.3, 0.55, 0.7)
        hist = GHHistogram.build(uniform_ds, 5)
        singleton = SpatialDataset(
            "q", RectArray.from_rects([query]), uniform_ds.extent
        )
        q_hist = GHHistogram.build(singleton, 5)
        dense = hist.estimate_pairs(q_hist)
        sparse = range_count_gh(hist, query)
        assert sparse == pytest.approx(dense, rel=1e-9)


class TestPHRangeCount:
    @pytest.mark.parametrize("query", QUERIES)
    def test_reasonable_on_uniform(self, uniform_ds, query):
        hist = PHHistogram.build(uniform_ds, 6)
        estimate = range_count_ph(hist, query)
        truth = true_count(uniform_ds, query)
        assert estimate == pytest.approx(truth, rel=0.25, abs=10)

    def test_beats_parametric_on_clustered(self, clustered_ds):
        hist = PHHistogram.build(clustered_ds, 6)
        summary = clustered_ds.summary()
        query = Rect(0.85, 0.05, 0.95, 0.15)  # empty corner
        truth = true_count(clustered_ds, query)
        ph_err = abs(range_count_ph(hist, query) - truth)
        par_err = abs(range_count_parametric(summary, query) - truth)
        assert ph_err < par_err

    def test_full_extent(self, uniform_ds):
        hist = PHHistogram.build(uniform_ds, 5)
        estimate = range_count_ph(hist, Rect.unit())
        assert estimate == pytest.approx(len(uniform_ds), rel=0.1)


class TestParametricRangeCount:
    def test_minkowski_formula(self):
        from repro.datasets import DatasetSummary

        summary = DatasetSummary(
            count=100, coverage=0.1, avg_width=0.1, avg_height=0.2, extent_area=1.0
        )
        query = Rect(0, 0, 0.3, 0.4)
        expected = 100 * (0.1 + 0.3) * (0.2 + 0.4) / 1.0
        assert range_count_parametric(summary, query) == pytest.approx(expected)

    def test_zero_area_extent_rejected(self):
        from repro.datasets import DatasetSummary

        bad = DatasetSummary(1, 0, 0, 0, 0.0)
        with pytest.raises(ValueError):
            range_count_parametric(bad, Rect.unit())

    def test_good_on_uniform_bad_on_clustered(self, uniform_ds, clustered_ds):
        query = Rect(0.05, 0.05, 0.25, 0.25)
        uni_err = abs(
            range_count_parametric(uniform_ds.summary(), query)
            - true_count(uniform_ds, query)
        ) / max(true_count(uniform_ds, query), 1)
        clu_err = abs(
            range_count_parametric(clustered_ds.summary(), query)
            - true_count(clustered_ds, query)
        ) / max(true_count(clustered_ds, query), 1)
        assert uni_err < 0.2
        assert clu_err > 1.0
