"""Unit tests for incremental histogram maintenance."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.geometry import Rect
from repro.histograms import (
    BasicGHHistogram,
    GHHistogram,
    PHHistogram,
    apply_updates,
    merge_histograms,
)
from tests.conftest import random_rects


@pytest.fixture
def full_ds(rng):
    return SpatialDataset("full", random_rects(rng, 600), Rect.unit())


def split(ds, k):
    first = SpatialDataset("a", ds.rects[np.arange(k)], ds.extent)
    second = SpatialDataset("b", ds.rects[np.arange(k, len(ds))], ds.extent)
    return first, second


ADDITIVE = [GHHistogram, BasicGHHistogram]


@pytest.mark.parametrize("hist_cls", ADDITIVE)
class TestApplyUpdates:
    def test_insert_equals_rebuild(self, full_ds, hist_cls):
        part, rest = split(full_ds, 200)
        incremental = apply_updates(hist_cls.build(part, 4), added=rest.rects)
        rebuilt = hist_cls.build(full_ds, 4)
        assert incremental.count == rebuilt.count
        for name in ("c", "h", "v"):
            assert np.allclose(getattr(incremental, name), getattr(rebuilt, name))

    def test_remove_round_trip(self, full_ds, hist_cls):
        part, rest = split(full_ds, 200)
        full_hist = hist_cls.build(full_ds, 4)
        shrunk = apply_updates(full_hist, removed=rest.rects)
        expected = hist_cls.build(part, 4)
        assert shrunk.count == expected.count
        for name in ("c", "h", "v"):
            assert np.allclose(getattr(shrunk, name), getattr(expected, name))

    def test_add_and_remove_together(self, full_ds, hist_cls):
        part, rest = split(full_ds, 300)
        hist = hist_cls.build(part, 3)
        swapped = apply_updates(hist, added=rest.rects, removed=part.rects)
        expected = hist_cls.build(
            SpatialDataset("r", rest.rects, full_ds.extent), 3
        )
        assert swapped.count == expected.count
        assert np.allclose(swapped.c, expected.c)

    def test_noop_update(self, full_ds, hist_cls):
        hist = hist_cls.build(full_ds, 3)
        same = apply_updates(hist)
        assert same.count == hist.count
        assert np.array_equal(same.c, hist.c)

    def test_estimates_track_updates(self, full_ds, hist_cls):
        """The estimate against a fixed partner changes consistently."""
        part, rest = split(full_ds, 300)
        partner = hist_cls.build(full_ds, 3)
        grown = apply_updates(hist_cls.build(part, 3), added=rest.rects)
        direct = hist_cls.build(full_ds, 3)
        assert grown.estimate_selectivity(partner) == pytest.approx(
            direct.estimate_selectivity(partner)
        )

    def test_over_removal_rejected(self, full_ds, hist_cls):
        part, rest = split(full_ds, 100)
        hist = hist_cls.build(part, 3)
        with pytest.raises(ValueError, match="more rectangles removed"):
            apply_updates(hist, removed=full_ds.rects)

    def test_original_not_mutated(self, full_ds, hist_cls):
        hist = hist_cls.build(full_ds, 3)
        snapshot = hist.c.copy()
        apply_updates(hist, added=full_ds.rects[:10])
        assert np.array_equal(hist.c, snapshot)


@pytest.mark.parametrize("hist_cls", ADDITIVE)
class TestMerge:
    def test_merge_equals_union_build(self, full_ds, hist_cls):
        part, rest = split(full_ds, 250)
        merged = merge_histograms(hist_cls.build(part, 4), hist_cls.build(rest, 4))
        direct = hist_cls.build(full_ds, 4)
        assert merged.count == direct.count
        for name in ("c", "h", "v"):
            assert np.allclose(getattr(merged, name), getattr(direct, name))

    def test_sharded_parallel_build(self, full_ds, hist_cls):
        """Merge a 4-way shard split — the parallel-build use case."""
        shards = [
            SpatialDataset(f"s{i}", full_ds.rects[np.arange(i, len(full_ds), 4)],
                           full_ds.extent)
            for i in range(4)
        ]
        merged = hist_cls.build(shards[0], 3)
        for shard in shards[1:]:
            merged = merge_histograms(merged, hist_cls.build(shard, 3))
        direct = hist_cls.build(full_ds, 3)
        assert np.allclose(merged.c, direct.c)

    def test_grid_mismatch_rejected(self, full_ds, hist_cls):
        with pytest.raises(ValueError, match="different grids"):
            merge_histograms(hist_cls.build(full_ds, 3), hist_cls.build(full_ds, 4))


class TestUnsupportedSchemes:
    def test_ph_updates_rejected(self, full_ds):
        hist = PHHistogram.build(full_ds, 3)
        with pytest.raises(TypeError, match="incremental maintenance"):
            apply_updates(hist, added=full_ds.rects[:5])

    def test_ph_merge_rejected(self, full_ds):
        hist = PHHistogram.build(full_ds, 3)
        with pytest.raises(TypeError):
            merge_histograms(hist, hist)

    def test_mixed_scheme_merge_rejected(self, full_ds):
        gh = GHHistogram.build(full_ds, 3)
        basic = BasicGHHistogram.build(full_ds, 3)
        with pytest.raises(TypeError, match="different schemes"):
            merge_histograms(gh, basic)
