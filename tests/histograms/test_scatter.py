"""The scatter-add kernel and the legacy-baseline switch.

``add_at_baseline`` restores the full pre-optimization build path (the
``np.add.at`` backend *and* the per-stage index expansion); the shipped
optimized builds must match it bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_clustered, make_uniform
from repro.histograms import GHHistogram, PHHistogram, add_at_baseline
from repro.histograms.scatter import scatter_add


class TestScatterAdd:
    @pytest.mark.parametrize("weighted", [True, False])
    @pytest.mark.parametrize("cells", [16, 1 << 10, 1 << 18])
    def test_matches_add_at(self, rng, weighted, cells):
        idx = rng.integers(0, cells, size=500).astype(np.int64)
        weights = rng.uniform(0.1, 2.0, size=500) if weighted else None
        fast = rng.uniform(0, 1, size=cells)  # non-zero prior content
        slow = fast.copy()
        scatter_add(fast, idx, weights)
        if weights is None:
            np.add.at(slow, idx, 1.0)
        else:
            np.add.at(slow, idx, weights)
        assert np.allclose(fast, slow, rtol=1e-12)

    def test_empty_indices_noop(self):
        out = np.zeros(64)
        scatter_add(out, np.empty(0, dtype=np.int64))
        assert not out.any()

    def test_repeated_indices_accumulate(self):
        out = np.zeros(4)
        scatter_add(out, np.array([1, 1, 1, 3]), np.array([1.0, 2.0, 3.0, 4.0]))
        assert out.tolist() == [0.0, 6.0, 0.0, 4.0]


class TestBaselineEquivalence:
    """Restoring the legacy path must not change a single bit of any build."""

    @pytest.mark.parametrize("level", [0, 3, 6])
    def test_gh_build_bit_identical(self, level):
        ds = make_clustered(2000, seed=42)
        fast = GHHistogram.build(ds, level)
        with add_at_baseline():
            slow = GHHistogram.build(ds, level)
        for name in ("c", "o", "h", "v"):
            assert np.array_equal(getattr(fast, name), getattr(slow, name)), name

    @pytest.mark.parametrize("level", [0, 3, 6])
    def test_ph_build_bit_identical(self, level):
        ds = make_uniform(2000, seed=43)
        fast = PHHistogram.build(ds, level)
        with add_at_baseline():
            slow = PHHistogram.build(ds, level)
        for name in ("num", "cov", "xavg", "yavg", "num_i", "cov_i", "xavg_i", "yavg_i"):
            assert np.array_equal(getattr(fast, name), getattr(slow, name)), name
        assert fast.avg_span == slow.avg_span

    def test_baseline_scope_restores(self):
        from repro.histograms import scatter

        # The backend default is numpy-version-dependent; the scope must
        # force the legacy path and restore whatever was set before.
        before = (scatter._use_bincount, scatter._fast_build)
        with add_at_baseline():
            assert not scatter._use_bincount
            assert not scatter._fast_build
        assert (scatter._use_bincount, scatter._fast_build) == before

    @pytest.mark.parametrize("flag", [True, False])
    def test_backends_interchangeable(self, rng, flag, monkeypatch):
        from repro.histograms import scatter

        monkeypatch.setattr(scatter, "_use_bincount", flag)
        ds = make_clustered(1500, seed=44)
        built = GHHistogram.build(ds, 5)
        monkeypatch.setattr(scatter, "_use_bincount", not flag)
        other = GHHistogram.build(ds, 5)
        for name in ("c", "o", "h", "v"):
            assert np.array_equal(getattr(built, name), getattr(other, name)), name
