"""Unit tests for the GH estimate diagnostics."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_clustered, make_points_like, make_polygons_like
from repro.geometry import RectArray
from repro.histograms import GHHistogram, cell_contributions
from tests.conftest import random_rects


@pytest.fixture
def pair_hists(rng):
    a = SpatialDataset("a", random_rects(rng, 400))
    b = SpatialDataset("b", random_rects(rng, 400))
    return GHHistogram.build(a, 4), GHHistogram.build(b, 4)


class TestDecompositionExactness:
    def test_sums_to_estimate(self, pair_hists):
        h1, h2 = pair_hists
        contributions = cell_contributions(h1, h2)
        assert contributions.total_points == pytest.approx(
            h1.estimate_intersection_points(h2)
        )

    def test_per_cell_sums(self, pair_hists):
        h1, h2 = pair_hists
        c = cell_contributions(h1, h2)
        assert np.allclose(c.per_cell_points, c.corner_term + c.crossing_term)

    def test_matrix_shape_and_total(self, pair_hists):
        h1, h2 = pair_hists
        c = cell_contributions(h1, h2)
        matrix = c.as_matrix()
        assert matrix.shape == (16, 16)
        assert matrix.sum() == pytest.approx(h1.estimate_pairs(h2))

    def test_symmetry(self, pair_hists):
        h1, h2 = pair_hists
        forward = cell_contributions(h1, h2)
        backward = cell_contributions(h2, h1)
        assert np.allclose(forward.per_cell_points, backward.per_cell_points)

    def test_grid_mismatch_rejected(self, rng):
        a = SpatialDataset("a", random_rects(rng, 10))
        with pytest.raises(ValueError):
            cell_contributions(GHHistogram.build(a, 2), GHHistogram.build(a, 3))


class TestInterpretation:
    def test_top_cells_point_at_the_hotspot(self):
        a = make_clustered(2000, seed=120, center=(0.25, 0.75), spread=0.02)
        b = make_clustered(2000, seed=121, center=(0.25, 0.75), spread=0.02)
        h1 = GHHistogram.build(a, 4)
        h2 = GHHistogram.build(b, 4)
        top = cell_contributions(h1, h2).top_cells(3)
        assert top  # something contributes
        # Cell (4, 12) of a 16x16 grid covers (0.25, 0.75).
        top_i, top_j, _ = top[0]
        assert abs(top_i - 4) <= 1
        assert abs(top_j - 12) <= 1

    def test_corner_share_high_for_point_polygon(self):
        p = make_points_like(2000, seed=122)
        g = make_polygons_like(2000, seed=123)
        h1 = GHHistogram.build(p, 5)
        h2 = GHHistogram.build(g, 5)
        share = cell_contributions(h1, h2).corner_share
        assert share > 0.8  # points have no edges: corner-dominated

    def test_corner_share_low_for_crossing_segments(self):
        # Horizontal segments joined with vertical segments: only edge
        # crossings can occur (zero-area MBRs have O = 0).
        rng = np.random.default_rng(0)
        y = rng.random(500)
        x0 = rng.random(500) * 0.8
        hseg = SpatialDataset("h", RectArray(x0, y, x0 + 0.2, y, validate=False))
        x = rng.random(500)
        y0 = rng.random(500) * 0.8
        vseg = SpatialDataset("v", RectArray(x, y0, x, y0 + 0.2, validate=False))
        h1 = GHHistogram.build(hseg, 4)
        h2 = GHHistogram.build(vseg, 4)
        share = cell_contributions(h1, h2).corner_share
        assert share < 0.05

    def test_empty_estimate_zero_share(self, rng):
        a = SpatialDataset("a", random_rects(rng, 5))
        empty = SpatialDataset("e", RectArray.empty())
        c = cell_contributions(GHHistogram.build(a, 2), GHHistogram.build(empty, 2))
        assert c.total_points == 0
        assert c.corner_share == 0.0
        assert c.top_cells() == []
