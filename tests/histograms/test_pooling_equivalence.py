"""Satellite acceptance test: 2×2 GH pooling ≡ fresh builds, all levels.

The multi-level derivation path (cache + pyramid) rests on one claim:
folding a level-``h`` GH histogram down to any coarser level produces
the same statistics as building at that level directly.  This file
proves it to 1e-9 relative tolerance across every level and across the
distribution shapes that stress different parts of the build — uniform,
clustered, degenerate (zero-area points), and empty data — plus through
the :class:`~repro.perf.HistogramCache` derivation path itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_clustered, make_points_like, make_uniform
from repro.geometry import Rect, RectArray
from repro.histograms import GHHistogram, downsample_gh
from repro.perf import HistogramCache

FINEST = 6
RTOL = 1e-9
ATOL = 1e-12


def _dataset(kind: str) -> SpatialDataset:
    if kind == "uniform":
        return make_uniform(1500, seed=7)
    if kind == "clustered":
        return make_clustered(1500, seed=11)
    if kind == "points":
        return make_points_like(1500, seed=13)
    if kind == "empty":
        return SpatialDataset("empty", RectArray.empty(), Rect.unit())
    raise AssertionError(kind)


def _derive(finest: GHHistogram, level: int) -> GHHistogram:
    hist = finest
    for _ in range(finest.grid.level - level):
        hist = downsample_gh(hist)
    return hist


def _assert_equivalent(derived: GHHistogram, direct: GHHistogram) -> None:
    assert derived.grid == direct.grid
    assert derived.count == direct.count
    for name in ("c", "o", "h", "v"):
        got, want = getattr(derived, name), getattr(direct, name)
        assert np.allclose(got, want, rtol=RTOL, atol=ATOL), name


@pytest.mark.parametrize("kind", ["uniform", "clustered", "points", "empty"])
@pytest.mark.parametrize("level", list(range(FINEST)))
def test_pooled_equals_fresh_build(kind, level):
    dataset = _dataset(kind)
    finest = GHHistogram.build(dataset, FINEST)
    _assert_equivalent(_derive(finest, level), GHHistogram.build(dataset, level))


@pytest.mark.parametrize("kind", ["clustered", "points"])
def test_cache_derivation_equals_fresh_build(kind):
    """The cache's derivation rung answers exactly what a rebuild would."""
    dataset = _dataset(kind)
    cache = HistogramCache()
    cache.get_or_build(dataset, "gh", FINEST)
    for level in range(FINEST):
        _assert_equivalent(
            cache.get_or_build(dataset, "gh", level), GHHistogram.build(dataset, level)
        )
    assert cache.stats.builds == 1
    assert cache.stats.derivations == FINEST


def test_pooled_estimates_match(rng):
    """End to end: selectivities from derived histograms equal rebuilt ones."""
    ds1 = make_uniform(1000, seed=3)
    ds2 = make_clustered(1000, seed=5)
    f1 = GHHistogram.build(ds1, FINEST)
    f2 = GHHistogram.build(ds2, FINEST)
    for level in range(FINEST):
        derived = _derive(f1, level).estimate_selectivity(_derive(f2, level))
        direct = GHHistogram.build(ds1, level).estimate_selectivity(
            GHHistogram.build(ds2, level)
        )
        assert derived == pytest.approx(direct, rel=RTOL)
