"""Histogram correctness on non-unit and anisotropic extents.

Most tests use the unit square (the paper's synthetic universe); these
make sure nothing silently assumes square cells, origin at zero, or
unit area — the real TIGER data lives in lon/lat boxes with very
different side lengths.
"""

import pytest

from repro.datasets import SpatialDataset, make_uniform
from repro.geometry import Rect, RectArray
from repro.histograms import (
    GHHistogram,
    PHHistogram,
    gh_selectivity,
    ph_selectivity,
    range_count_gh,
)
from repro.join import actual_selectivity

#: A lon/lat-like extent: wide, flat, offset, negative coordinates.
WIDE = Rect(-104.0, 36.9, -89.0, 43.5)


@pytest.fixture(scope="module")
def wide_pair():
    a = make_uniform(4000, seed=60, extent=WIDE, mean_width=0.08, mean_height=0.03)
    b = make_uniform(4000, seed=61, extent=WIDE, mean_width=0.08, mean_height=0.03)
    return a, b


class TestAnisotropicEstimation:
    def test_gh_accuracy_unaffected(self, wide_pair):
        a, b = wide_pair
        truth = actual_selectivity(a.rects, b.rects)
        assert gh_selectivity(a, b, 5) == pytest.approx(truth, rel=0.15)

    def test_ph_accuracy_unaffected(self, wide_pair):
        a, b = wide_pair
        truth = actual_selectivity(a.rects, b.rects)
        assert ph_selectivity(a, b, 4) == pytest.approx(truth, rel=0.35)

    def test_estimates_invariant_under_affine_map(self, wide_pair):
        """Selectivity is affine-invariant; histogram estimates built on
        correspondingly mapped grids must agree (up to float noise)."""
        a, b = wide_pair
        wide_est = gh_selectivity(a, b, 4)

        # Map to the unit square and re-estimate.
        from repro.geometry import NormalizationTransform

        tf = NormalizationTransform(WIDE)
        a_unit = SpatialDataset("a", tf.apply(a.rects), Rect.unit())
        b_unit = SpatialDataset("b", tf.apply(b.rects), Rect.unit())
        unit_est = gh_selectivity(a_unit, b_unit, 4)
        assert wide_est == pytest.approx(unit_est, rel=1e-6)

    def test_gh_invariants_on_wide_extent(self, wide_pair):
        a, _ = wide_pair
        hist = GHHistogram.build(a, 4)
        assert hist.c.sum() == 4 * len(a)
        assert hist.o.sum() * hist.grid.cell_area == pytest.approx(
            a.rects.total_area()
        )
        assert hist.h.sum() * hist.grid.cell_width == pytest.approx(
            2 * a.rects.widths().sum()
        )

    def test_range_count_on_wide_extent(self, wide_pair):
        a, _ = wide_pair
        hist = GHHistogram.build(a, 5)
        query = Rect(-100.0, 38.0, -96.0, 41.0)
        truth = int(a.rects.intersects_rect(query).sum())
        assert range_count_gh(hist, query) == pytest.approx(truth, rel=0.15)

    def test_ph_cell_area_usage(self, wide_pair):
        a, _ = wide_pair
        hist = PHHistogram.build(a, 3)
        # Coverage conservation with non-unit cell area.
        total = (hist.cov + hist.cov_i).sum() * hist.grid.cell_area
        assert total == pytest.approx(a.rects.total_area())


class TestSelfJoin:
    """Self-join selectivity (the setting of the paper's fractal-based
    related work [6]): joining a dataset with itself, diagonal included."""

    def test_gh_self_join_tracks_truth(self):
        ds = make_uniform(3000, seed=62, mean_width=0.01, mean_height=0.01)
        hist = GHHistogram.build(ds, 6)
        estimate = hist.estimate_selectivity(hist)
        truth = actual_selectivity(ds.rects, ds.rects)
        # The diagonal (each rect intersecting itself) is N pairs out of
        # N^2; the continuous model approximates it closely at this size.
        assert estimate == pytest.approx(truth, rel=0.25)

    def test_coincident_rects_show_independence_limit(self):
        """Known limitation (inherent to *any* per-cell marginal
        histogram): 50 exactly coincident rectangles have true self-join
        selectivity 1, but the estimator models placements as
        independent within cells, so it reports the independent-
        placement probability — for a 0.2-square in the unit cell at
        h=0 that is (0.2+0.2)^2 = 0.16, not 1.  Deterministic
        coincidence is joint information that the marginal statistics
        cannot carry."""
        rects = RectArray.from_rects([Rect(0.4, 0.4, 0.6, 0.6)] * 50)
        ds = SpatialDataset("dense", rects)
        truth = actual_selectivity(rects, rects)
        assert truth == 1.0
        hist = GHHistogram.build(ds, 0)
        assert hist.estimate_selectivity(hist) == pytest.approx(0.16, rel=1e-9)
