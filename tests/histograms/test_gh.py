"""Unit tests for the revised Geometric Histogram (GH) scheme."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_clustered, make_uniform
from repro.geometry import Rect, RectArray
from repro.histograms import GHHistogram, gh_selectivity, parametric_selectivity
from repro.join import actual_selectivity
from tests.conftest import random_rects


class TestTable2Invariants:
    """The four per-cell statistics have exact global invariants."""

    def test_corner_sum_is_4n(self, rng):
        rects = random_rects(rng, 500, max_side=0.2)
        hist = GHHistogram.build(SpatialDataset("d", rects), 4)
        assert hist.c.sum() == 4 * 500

    def test_corner_sum_is_4n_for_points(self, rng):
        points = RectArray.from_points(rng.random(200), rng.random(200))
        hist = GHHistogram.build(SpatialDataset("p", points), 3)
        assert hist.c.sum() == 4 * 200

    def test_o_sum_recovers_total_area(self, rng):
        rects = random_rects(rng, 400, max_side=0.3)
        hist = GHHistogram.build(SpatialDataset("d", rects), 3)
        assert hist.o.sum() * hist.grid.cell_area == pytest.approx(rects.total_area())

    def test_h_sum_recovers_edge_lengths(self, rng):
        """H sums (clipped length / cell width): globally that recovers
        2 * total width / cell width (each MBR has two horizontal edges)."""
        rects = random_rects(rng, 400, max_side=0.3)
        hist = GHHistogram.build(SpatialDataset("d", rects), 3)
        expected = 2 * rects.widths().sum() / hist.grid.cell_width
        assert hist.h.sum() == pytest.approx(expected)

    def test_v_sum_recovers_edge_lengths(self, rng):
        rects = random_rects(rng, 400, max_side=0.3)
        hist = GHHistogram.build(SpatialDataset("d", rects), 3)
        expected = 2 * rects.heights().sum() / hist.grid.cell_height
        assert hist.v.sum() == pytest.approx(expected)

    def test_invariants_hold_at_every_level(self, rng):
        rects = random_rects(rng, 200, max_side=0.4)
        for level in range(6):
            hist = GHHistogram.build(SpatialDataset("d", rects), level)
            assert hist.c.sum() == 4 * 200
            assert hist.o.sum() * hist.grid.cell_area == pytest.approx(
                rects.total_area()
            )

    def test_point_dataset_has_zero_o_h_v(self, rng):
        points = RectArray.from_points(rng.random(100), rng.random(100))
        hist = GHHistogram.build(SpatialDataset("p", points), 3)
        assert hist.o.sum() == 0
        assert hist.h.sum() == 0
        assert hist.v.sum() == 0

    def test_cell_arrays_names(self, rng):
        hist = GHHistogram.build(SpatialDataset("d", random_rects(rng, 10)), 1)
        assert set(hist.cell_arrays()) == {"C", "O", "H", "V"}

    def test_empty_dataset(self):
        hist = GHHistogram.build(SpatialDataset("e", RectArray.empty()), 2)
        assert hist.count == 0
        assert hist.c.sum() == 0


class TestSingleCellExactness:
    """With everything in one cell, Equation 5 is the closed-form
    expected value under uniformity — check it by hand (Figure 5)."""

    def test_corner_term(self):
        # Dataset 1: a point at cell center; dataset 2: a rect covering
        # a quarter of the cell.  Expected intersection points:
        # C1*O2 = 4 * 0.25 = 1; all other terms need edges (point has
        # none) or corners of 2 inside 1 (zero-area).
        p = SpatialDataset("p", RectArray.from_points(np.array([0.5]), np.array([0.5])))
        r = SpatialDataset(
            "r", RectArray.from_rects([Rect(0.0, 0.0, 0.5, 0.5)])
        )
        h1 = GHHistogram.build(p, 0)
        h2 = GHHistogram.build(r, 0)
        # IP = C1*O2 + C2*O1 + H1*V2 + H2*V1 = 4*0.25 + 4*0 + 0 + 0 = 1.
        assert h1.estimate_intersection_points(h2) == pytest.approx(1.0)
        # Pairs = 1/4; the true probability a random point hits a fixed
        # quarter-area rect is exactly 0.25. Unbiased by construction.
        assert h1.estimate_pairs(h2) == pytest.approx(0.25)

    def test_edge_crossing_term(self):
        # Horizontal segment (length 0.6) x vertical segment (length 0.4)
        # in the unit cell: crossing probability = 0.6*0.4 = 0.24; each
        # pair of crossing segments yields 2 crossings... but as MBRs,
        # each degenerate segment has TWO coincident horizontal (resp.
        # vertical) edges, so H1 = 2*0.6, V2 = 2*0.4.
        hseg = SpatialDataset("h", RectArray.from_rects([Rect(0.2, 0.5, 0.8, 0.5)]))
        vseg = SpatialDataset("v", RectArray.from_rects([Rect(0.5, 0.3, 0.5, 0.7)]))
        h1 = GHHistogram.build(hseg, 0)
        h2 = GHHistogram.build(vseg, 0)
        assert h1.h.sum() == pytest.approx(1.2)
        assert h2.v.sum() == pytest.approx(0.8)
        # IP = H1*V2 + H2*V1 + corner terms (zero area => O = 0).
        assert h1.estimate_intersection_points(h2) == pytest.approx(1.2 * 0.8)

    def test_full_rects_match_equation1_degenerate_form(self):
        # Two proper rects in one cell: Eq. 5's estimate equals the
        # expected number of intersection points under uniformity, i.e.
        # 4 * Eq. 1's pair probability (sanity link the paper draws).
        a = SpatialDataset("a", RectArray.from_rects([Rect(0.1, 0.1, 0.4, 0.3)]))
        b = SpatialDataset("b", RectArray.from_rects([Rect(0.5, 0.5, 0.7, 0.9)]))
        h1 = GHHistogram.build(a, 0)
        h2 = GHHistogram.build(b, 0)
        pairs_gh = h1.estimate_pairs(h2)
        pairs_eq1 = parametric_selectivity(a, b)  # N1=N2=1 so size==selectivity
        assert pairs_gh == pytest.approx(pairs_eq1)


class TestEstimationQuality:
    def test_unbiased_on_uniform(self):
        a = make_uniform(3000, seed=1, mean_width=0.01, mean_height=0.01)
        b = make_uniform(3000, seed=2, mean_width=0.01, mean_height=0.01)
        truth = actual_selectivity(a.rects, b.rects)
        for level in (0, 3, 6):
            assert gh_selectivity(a, b, level) == pytest.approx(truth, rel=0.15)

    def test_error_shrinks_with_level_on_clustered(self):
        a = make_clustered(4000, seed=1, spread=0.05)
        b = make_clustered(4000, seed=2, spread=0.05)
        truth = actual_selectivity(a.rects, b.rects)
        errors = [
            abs(gh_selectivity(a, b, level) - truth) / truth for level in (0, 3, 6)
        ]
        assert errors[2] < errors[0] / 3
        assert errors[2] < 0.1

    def test_beats_parametric_on_skew(self):
        a = make_clustered(4000, seed=1, spread=0.04)
        b = make_clustered(4000, seed=2, spread=0.04)
        truth = actual_selectivity(a.rects, b.rects)
        gh_err = abs(gh_selectivity(a, b, 6) - truth)
        par_err = abs(parametric_selectivity(a, b) - truth)
        assert gh_err < par_err / 5

    def test_symmetry(self):
        a = make_uniform(500, seed=3)
        b = make_clustered(500, seed=4)
        assert gh_selectivity(a, b, 4) == pytest.approx(gh_selectivity(b, a, 4))

    def test_point_polygon_join(self):
        """The Sequoia case: zero-area points joined with polygons."""
        from repro.datasets import make_points_like, make_polygons_like

        p = make_points_like(3000, seed=1)
        g = make_polygons_like(3000, seed=2)
        truth = actual_selectivity(p.rects, g.rects)
        est = gh_selectivity(p, g, 6)
        assert est == pytest.approx(truth, rel=0.2)


class TestValidation:
    def test_grid_mismatch_rejected(self, rng):
        a = SpatialDataset("a", random_rects(rng, 10))
        h1 = GHHistogram.build(a, 2)
        h2 = GHHistogram.build(a, 3)
        with pytest.raises(ValueError, match="same grid"):
            h1.estimate_intersection_points(h2)

    def test_empty_estimates_zero(self, rng):
        full = GHHistogram.build(SpatialDataset("a", random_rects(rng, 10)), 2)
        empty = GHHistogram.build(SpatialDataset("e", RectArray.empty()), 2)
        assert full.estimate_selectivity(empty) == 0.0

    def test_extent_mismatch_in_helper(self, rng):
        a = SpatialDataset("a", random_rects(rng, 10), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 10), Rect(0, 0, 2, 2))
        with pytest.raises(ValueError):
            gh_selectivity(a, b, 2)


class TestSizeAccounting:
    def test_half_of_ph(self, rng):
        from repro.histograms import PHHistogram

        ds = SpatialDataset("d", random_rects(rng, 100))
        gh = GHHistogram.build(ds, 4)
        ph = PHHistogram.build(ds, 4)
        assert gh.size_bytes * 2 <= ph.size_bytes

    def test_size_depends_only_on_level(self, rng):
        a = GHHistogram.build(SpatialDataset("a", random_rects(rng, 10)), 5)
        b = GHHistogram.build(SpatialDataset("b", random_rects(rng, 5000)), 5)
        assert a.size_bytes == b.size_bytes
