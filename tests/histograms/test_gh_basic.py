"""Unit tests for the basic GH scheme, including the paper's worked
examples (Figure 3) and failure cases (Figure 4)."""

import pytest

from repro.datasets import SpatialDataset, make_clustered
from repro.geometry import Rect, RectArray
from repro.histograms import BasicGHHistogram, gh_basic_selectivity
from repro.join import actual_selectivity
from tests.conftest import random_rects


def single(name: str, rect: Rect) -> SpatialDataset:
    return SpatialDataset(name, RectArray.from_rects([rect]))


class TestPaperFigure3Example:
    """Figure 3: two MBRs whose four intersection points fall in four
    different grid cells; Equation 4 counts exactly 4 points => 1 pair.

    Geometry (4x4 grid on the unit square, central cells (1..2, 1..2)):
    ``a`` has its lower-left corner in cell (1,1) and extends beyond the
    central block; ``b`` has its upper-right corner in cell (2,2).
    """

    A = Rect(0.3, 0.35, 0.9, 0.9)
    B = Rect(0.1, 0.1, 0.65, 0.7)

    @pytest.fixture
    def histograms(self):
        ha = BasicGHHistogram.build(single("a", self.A), 2)
        hb = BasicGHHistogram.build(single("b", self.B), 2)
        return ha, hb

    def test_four_intersection_points(self, histograms):
        ha, hb = histograms
        assert ha.estimate_intersection_points(hb) == pytest.approx(4.0)

    def test_selectivity_is_one(self, histograms):
        ha, hb = histograms
        assert ha.estimate_selectivity(hb) == pytest.approx(1.0)

    def test_cell_contents_match_figure(self, histograms):
        ha, hb = histograms
        side = ha.grid.side

        def cell(hist, i, j):
            f = j * side + i
            return (hist.c[f], hist.i[f], hist.h[f], hist.v[f])

        # a's lower-left corner cell: one corner, intersecting, one
        # horizontal and one vertical edge passing (C=1, I=1, H=1, V=1).
        assert cell(ha, 1, 1) == (1, 1, 1, 1)
        # b's upper-right corner cell symmetrically.
        assert cell(hb, 2, 2) == (1, 1, 1, 1)
        # Interior-crossing cells: a passes through with no corner/edge
        # except the continuing edge runs.
        assert cell(ha, 2, 1) == (0, 1, 1, 0)
        assert cell(hb, 1, 2) == (0, 1, 1, 0)


class TestPaperFigure4Inaccuracies:
    """Figure 4: at coarse grids basic GH both false-counts (disjoint
    MBRs in one cell) and multiple-counts (overlapping statistics in
    every shared cell); finer gridding removes the error."""

    def test_false_counting_disjoint_mbrs_same_cell(self):
        a = single("a", Rect(0.05, 0.05, 0.15, 0.15))
        b = single("b", Rect(0.30, 0.30, 0.40, 0.40))
        # Level 1: both MBRs in cell (0, 0); Eq. 4 fabricates 16 points.
        ha = BasicGHHistogram.build(a, 1)
        hb = BasicGHHistogram.build(b, 1)
        assert ha.estimate_intersection_points(hb) == pytest.approx(16.0)
        # Level 3: the MBRs fall in disjoint cells; the error vanishes.
        ha = BasicGHHistogram.build(a, 3)
        hb = BasicGHHistogram.build(b, 3)
        assert ha.estimate_intersection_points(hb) == pytest.approx(0.0)

    def test_multiple_counting_overlapping_mbrs(self):
        # Corner-overlap pair straddling the 2x2 center: every one of the
        # four cells sees corners/edges/incidences of both MBRs and
        # contributes 4, i.e. 16 points instead of 4.
        a = single("a", Rect(0.2, 0.2, 0.6, 0.6))
        b = single("b", Rect(0.4, 0.4, 0.8, 0.8))
        ha = BasicGHHistogram.build(a, 1)
        hb = BasicGHHistogram.build(b, 1)
        assert ha.estimate_intersection_points(hb) == pytest.approx(16.0)

    def test_errors_diminish_with_level(self):
        """Figure 4's bottom line: a fine enough grid separates the
        statistics and the Equation 4 estimate approaches the truth."""
        a = make_clustered(800, seed=1, spread=0.15)
        b = make_clustered(800, seed=2, spread=0.15)
        truth = actual_selectivity(a.rects, b.rects)
        errors = []
        for level in (1, 4, 7):
            est = gh_basic_selectivity(a, b, level)
            errors.append(abs(est - truth) / truth)
        assert errors[0] > errors[1] > errors[2]

    def test_always_overestimates(self, rng):
        """Basic GH's failure modes (false + multiple counting) both
        inflate the count, so the estimate upper-bounds the truth."""
        a = SpatialDataset("a", random_rects(rng, 300))
        b = SpatialDataset("b", random_rects(rng, 300))
        truth = actual_selectivity(a.rects, b.rects)
        for level in (0, 2, 4):
            assert gh_basic_selectivity(a, b, level) >= truth * 0.999


class TestCountInvariants:
    def test_corner_sum(self, rng):
        rects = random_rects(rng, 200)
        hist = BasicGHHistogram.build(SpatialDataset("d", rects), 3)
        assert hist.c.sum() == 4 * 200

    def test_incidence_sum_equals_total_span(self, rng):
        rects = random_rects(rng, 200, max_side=0.3)
        hist = BasicGHHistogram.build(SpatialDataset("d", rects), 3)
        assert hist.i.sum() == hist.grid.span_counts(rects).sum()

    def test_edge_counts(self, rng):
        rects = random_rects(rng, 200, max_side=0.3)
        hist = BasicGHHistogram.build(SpatialDataset("d", rects), 3)
        grid = hist.grid
        i0, i1 = grid.column_of(rects.xmin), grid.column_of(rects.xmax)
        expected_h = 2 * (i1 - i0 + 1).sum()  # two horizontal edges each
        assert hist.h.sum() == expected_h

    def test_empty(self):
        hist = BasicGHHistogram.build(SpatialDataset("e", RectArray.empty()), 2)
        assert hist.c.sum() == hist.i.sum() == hist.h.sum() == hist.v.sum() == 0

    def test_grid_mismatch_rejected(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 10))
        with pytest.raises(ValueError):
            BasicGHHistogram.build(ds, 1).estimate_intersection_points(
                BasicGHHistogram.build(ds, 2)
            )

    def test_size_bytes(self, rng):
        hist = BasicGHHistogram.build(SpatialDataset("d", random_rects(rng, 10)), 3)
        assert hist.size_bytes == 8 * 4 * 64
