"""Unit tests for the Parametric Histogram (PH) scheme."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_clustered, make_uniform
from repro.geometry import Rect, RectArray
from repro.histograms import PHHistogram, parametric_selectivity, ph_selectivity
from repro.join import actual_selectivity
from tests.conftest import random_rects


@pytest.fixture
def uniform_pair():
    a = make_uniform(3000, seed=1, mean_width=0.01, mean_height=0.01)
    b = make_uniform(3000, seed=2, mean_width=0.01, mean_height=0.01)
    return a, b


class TestBuild:
    def test_level0_reduces_to_global_parameters(self, rng):
        """At h = 0 the single cell holds the whole-dataset Aref–Samet
        parameters — the paper's 'PH at level 0 is the prior parametric
        model' statement."""
        rects = random_rects(rng, 500)
        ds = SpatialDataset("d", rects)
        hist = PHHistogram.build(ds, 0)
        summary = ds.summary()
        assert hist.num[0] == 500
        assert hist.cov[0] == pytest.approx(summary.coverage)
        assert hist.xavg[0] == pytest.approx(summary.avg_width)
        assert hist.yavg[0] == pytest.approx(summary.avg_height)
        assert hist.num_i[0] == 0  # nothing can cross the only cell

    def test_cont_isect_partition(self, rng):
        """Every rectangle is counted either as contained (once) or as
        intersecting (once per overlapped cell)."""
        rects = random_rects(rng, 400, max_side=0.2)
        ds = SpatialDataset("d", rects)
        hist = PHHistogram.build(ds, 3)
        grid = hist.grid
        contained = grid.contained_mask(rects)
        assert hist.num.sum() == contained.sum()
        spans = grid.span_counts(rects[~contained])
        assert hist.num_i.sum() == spans.sum()

    def test_avg_span_definition(self, rng):
        rects = random_rects(rng, 300, max_side=0.3)
        ds = SpatialDataset("d", rects)
        hist = PHHistogram.build(ds, 3)
        grid = hist.grid
        spanning = rects[~grid.contained_mask(rects)]
        if len(spanning):
            assert hist.avg_span == pytest.approx(
                float(grid.span_counts(spanning).mean())
            )

    def test_avg_span_defaults_to_one(self):
        # All rects inside single cells -> no spanning -> AvgSpan 1.
        rects = RectArray.from_rects([Rect(0.1, 0.1, 0.2, 0.2)])
        hist = PHHistogram.build(SpatialDataset("d", rects), 1)
        assert hist.avg_span == 1.0

    def test_coverage_conservation(self, rng):
        """Summed cell coverages times cell area = total data area."""
        rects = random_rects(rng, 300, max_side=0.3)
        hist = PHHistogram.build(SpatialDataset("d", rects), 4)
        recovered = (hist.cov + hist.cov_i).sum() * hist.grid.cell_area
        assert recovered == pytest.approx(rects.total_area())

    def test_empty_dataset(self):
        hist = PHHistogram.build(SpatialDataset("e", RectArray.empty()), 2)
        assert hist.count == 0
        assert hist.num.sum() == 0
        assert hist.avg_span == 1.0

    def test_explicit_extent_override(self, rng):
        rects = random_rects(rng, 100)
        ds = SpatialDataset("d", rects)
        hist = PHHistogram.build(ds, 2, extent=Rect(-1, -1, 2, 2))
        assert hist.grid.extent == Rect(-1, -1, 2, 2)

    def test_cell_arrays_names(self, rng):
        hist = PHHistogram.build(SpatialDataset("d", random_rects(rng, 10)), 1)
        assert set(hist.cell_arrays()) == {
            "Num", "Cov", "Xavg", "Yavg", "Num'", "Cov'", "Xavg'", "Yavg'",
        }


class TestEstimation:
    def test_level0_equals_parametric(self, uniform_pair):
        a, b = uniform_pair
        assert ph_selectivity(a, b, 0) == pytest.approx(parametric_selectivity(a, b))

    def test_reasonable_on_uniform(self, uniform_pair):
        a, b = uniform_pair
        truth = actual_selectivity(a.rects, b.rects)
        for level in (0, 2, 4):
            assert ph_selectivity(a, b, level) == pytest.approx(truth, rel=0.35)

    def test_improves_on_clustered_data(self):
        """Gridding is the whole point: PH at a moderate level must beat
        the parametric baseline on skewed data."""
        a = make_clustered(4000, seed=1, spread=0.05)
        b = make_clustered(4000, seed=2, spread=0.05)
        truth = actual_selectivity(a.rects, b.rects)
        err0 = abs(ph_selectivity(a, b, 0) - truth) / truth
        err4 = abs(ph_selectivity(a, b, 4) - truth) / truth
        assert err4 < err0 / 2

    def test_symmetry(self, uniform_pair):
        a, b = uniform_pair
        assert ph_selectivity(a, b, 3) == pytest.approx(ph_selectivity(b, a, 3))

    def test_grid_mismatch_rejected(self, uniform_pair):
        a, b = uniform_pair
        h1 = PHHistogram.build(a, 2)
        h2 = PHHistogram.build(b, 3)
        with pytest.raises(ValueError, match="same grid"):
            h1.estimate_selectivity(h2)

    def test_extent_mismatch_rejected(self, uniform_pair):
        a, b = uniform_pair
        h1 = PHHistogram.build(a, 2)
        h2 = PHHistogram.build(b, 2, extent=Rect(0, 0, 2, 2))
        with pytest.raises(ValueError, match="same grid"):
            h1.estimate_selectivity(h2)

    def test_empty_dataset_estimates_zero(self, uniform_pair):
        a, _ = uniform_pair
        empty = PHHistogram.build(SpatialDataset("e", RectArray.empty()), 2)
        full = PHHistogram.build(a, 2)
        assert full.estimate_selectivity(empty) == 0.0

    def test_datasets_must_share_extent(self, rng):
        a = SpatialDataset("a", random_rects(rng, 10), Rect.unit())
        b = SpatialDataset("b", random_rects(rng, 10), Rect(0, 0, 2, 2))
        with pytest.raises(ValueError):
            ph_selectivity(a, b, 2)


class TestSpanCorrection:
    def test_multiple_counting_without_correction(self):
        """Figure 1's point: boundary-spanning MBRs intersecting in
        several cells are multiply counted by the Sd term; the AvgSpan
        division reduces the estimate (by exactly the mean-span factor
        on the Sd component — Equation 3)."""
        # Rects straddling the center crossing of a 2x2 grid.
        rng = np.random.default_rng(0)
        n = 400
        cx = 0.5 + rng.uniform(-0.02, 0.02, n)
        cy = 0.5 + rng.uniform(-0.02, 0.02, n)
        rects = RectArray.from_centers(cx, cy, 0.2, 0.2)
        ds1 = SpatialDataset("a", rects)
        ds2 = SpatialDataset("b", rects.translate(0.001, 0.001).clip_to(Rect.unit()))
        ds2 = SpatialDataset("b", ds2.rects, Rect.unit())
        h1 = PHHistogram.build(ds1, 1)
        h2 = PHHistogram.build(ds2, 1)
        corrected = h1.estimate_pairs(h2)
        uncorrected = h1.estimate_pairs_uncorrected(h2)
        assert uncorrected > corrected
        # Every rect straddles the center crossing: AvgSpan is exactly 4,
        # and Equation 3 divides the (pure-Sd) estimate by it.
        assert h1.avg_span == pytest.approx(4.0)
        assert uncorrected / corrected == pytest.approx(4.0)

    def test_equation3_formula_verbatim(self, rng):
        """Reassemble Equation 3 from the stored cell arrays by hand and
        compare against estimate_pairs."""
        a = SpatialDataset("a", random_rects(rng, 300, max_side=0.3))
        b = SpatialDataset("b", random_rects(rng, 250, max_side=0.3))
        h1 = PHHistogram.build(a, 2)
        h2 = PHHistogram.build(b, 2)
        area = h1.grid.cell_area

        def case(n1, c1, x1, y1, n2, c2, x2, y2):
            return n1 * c2 + c1 * n2 + n1 * n2 * (x1 * y2 + y1 * x2) / area

        sa = case(h1.num, h1.cov, h1.xavg, h1.yavg, h2.num, h2.cov, h2.xavg, h2.yavg)
        sb = case(h1.num, h1.cov, h1.xavg, h1.yavg, h2.num_i, h2.cov_i, h2.xavg_i, h2.yavg_i)
        sc = case(h1.num_i, h1.cov_i, h1.xavg_i, h1.yavg_i, h2.num, h2.cov, h2.xavg, h2.yavg)
        sd = case(h1.num_i, h1.cov_i, h1.xavg_i, h1.yavg_i, h2.num_i, h2.cov_i, h2.xavg_i, h2.yavg_i)
        expected = sa.sum() + sb.sum() + sc.sum() + sd.sum() / (
            (h1.avg_span + h2.avg_span) / 2
        )
        assert h1.estimate_pairs(h2) == pytest.approx(float(expected))

    def test_correction_noop_when_nothing_spans(self, rng):
        from repro.datasets import make_grid_aligned

        ds = make_grid_aligned(500, seed=0, grid=4)
        h = PHHistogram.build(ds, 2)
        assert h.estimate_pairs(h) == pytest.approx(h.estimate_pairs_uncorrected(h))

    def test_estimator_flag(self, uniform_pair):
        a, b = uniform_pair
        h1 = PHHistogram.build(a, 4)
        h2 = PHHistogram.build(b, 4)
        on = h1.estimate_selectivity(h2, span_correction=True)
        off = h1.estimate_selectivity(h2, span_correction=False)
        assert off >= on


class TestSizeAccounting:
    def test_size_depends_only_on_level(self, rng):
        small = PHHistogram.build(SpatialDataset("s", random_rects(rng, 10)), 3)
        large = PHHistogram.build(SpatialDataset("l", random_rects(rng, 10_000)), 3)
        assert small.size_bytes == large.size_bytes

    def test_size_grows_4x_per_level(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 10))
        s3 = PHHistogram.build(ds, 3).size_bytes
        s4 = PHHistogram.build(ds, 4).size_bytes
        assert s4 / s3 == pytest.approx(4.0, rel=0.01)
