"""Unit tests for the 1-D endpoint histograms (inequality selectivity)."""

import numpy as np
import pytest

from repro.histograms import EndpointHistogram, endpoint_inequality_estimate


def _build(values, level=3, lo=0.0, hi=1.0):
    return EndpointHistogram.build(np.asarray(values, dtype=np.float64), level, lo=lo, hi=hi)


def test_build_basic_shape():
    h = _build([0.1, 0.2, 0.9], level=3)
    assert h.buckets == 8
    assert h.count == 3
    assert h.size_bytes == 64
    assert h.counts.dtype == np.float64
    assert h.counts.sum() == 3.0
    np.testing.assert_allclose(h.fractions().sum(), 1.0)


def test_bucket_placement_and_clamping():
    # Bucket width 1/4; out-of-range values clamp into boundary buckets,
    # and hi itself lands in the last bucket (not one past it).
    h = _build([-5.0, 0.0, 0.26, 0.99, 1.0, 42.0], level=2)
    np.testing.assert_array_equal(h.counts, [2.0, 1.0, 0.0, 3.0])


def test_zero_width_range_degenerates_to_bucket_zero():
    h = _build([0.5, 0.5, 0.7], level=3, lo=0.5, hi=0.5)
    assert h.counts[0] == 3.0
    assert h.counts[1:].sum() == 0.0


def test_level_zero_single_bucket():
    h = _build([0.1, 0.9], level=0)
    assert h.buckets == 1
    np.testing.assert_array_equal(h.counts, [2.0])


def test_build_validation():
    with pytest.raises(ValueError, match="level"):
        _build([0.5], level=-1)
    with pytest.raises(ValueError, match="range"):
        _build([0.5], lo=1.0, hi=0.0)
    with pytest.raises(ValueError, match="range"):
        _build([0.5], lo=0.0, hi=float("inf"))


def test_empty_histogram():
    h = _build([])
    assert h.count == 0
    assert h.counts.sum() == 0.0
    np.testing.assert_array_equal(h.fractions(), np.zeros(8))
    other = _build([0.25, 0.75])
    assert h.estimate_inequality(other, "lt") == 0.0
    assert other.estimate_inequality(h, "gt") == 0.0


def test_grid_mismatch_rejected():
    base = _build([0.5], level=3, lo=0.0, hi=1.0)
    for other in (
        _build([0.5], level=2, lo=0.0, hi=1.0),
        _build([0.5], level=3, lo=0.0, hi=2.0),
        _build([0.5], level=3, lo=-1.0, hi=1.0),
    ):
        with pytest.raises(ValueError, match="grid"):
            base.estimate_inequality(other, "lt")


def test_bad_op_rejected():
    h = _build([0.5])
    with pytest.raises(ValueError, match="op"):
        h.estimate_inequality(h, "ne")


def test_separated_masses_are_certain():
    low = _build([0.05, 0.1, 0.2], level=3)
    high = _build([0.8, 0.9, 0.95], level=3)
    assert low.estimate_inequality(high, "lt") == 1.0
    assert low.estimate_inequality(high, "ge") == 0.0
    assert high.estimate_inequality(low, "gt") == 1.0


def test_shared_bucket_splits_half():
    a = _build([0.5], level=0)
    b = _build([0.5], level=0)
    assert a.estimate_inequality(b, "lt") == 0.5
    assert a.estimate_inequality(b, "gt") == 0.5


@pytest.mark.parametrize("level", [0, 3, 6])
def test_complement_identity_bit_exact(level):
    rng = np.random.default_rng(17)
    a = _build(rng.random(500), level=level)
    b = _build(rng.beta(2.0, 5.0, size=400), level=level)
    for strict, loose in (("lt", "ge"), ("le", "gt")):
        assert a.estimate_inequality(b, strict) + a.estimate_inequality(b, loose) == 1.0
    # Continuous model: le ≡ lt and ge ≡ gt.
    assert a.estimate_inequality(b, "lt") == a.estimate_inequality(b, "le")
    assert a.estimate_inequality(b, "gt") == a.estimate_inequality(b, "ge")


def test_accuracy_against_exact_sort_count():
    rng = np.random.default_rng(23)
    va = rng.random(2000)
    vb = rng.beta(2.0, 5.0, size=1500)
    exact = np.searchsorted(np.sort(vb), va, side="right")
    exact_p = (len(vb) - exact).sum() / (len(va) * len(vb))
    est = endpoint_inequality_estimate(va, vb, 6, "lt", lo=0.0, hi=1.0)
    assert est == pytest.approx(exact_p, rel=0.02)
    # Finer grids should not do worse than the single-bucket floor.
    floor = endpoint_inequality_estimate(va, vb, 0, "lt", lo=0.0, hi=1.0)
    assert abs(est - exact_p) <= abs(floor - exact_p)


def test_one_shot_helper_matches_manual_build():
    rng = np.random.default_rng(29)
    va, vb = rng.random(100), rng.random(80)
    manual = _build(va, level=4).estimate_inequality(_build(vb, level=4), "ge")
    assert endpoint_inequality_estimate(va, vb, 4, "ge", lo=0.0, hi=1.0) == manual
