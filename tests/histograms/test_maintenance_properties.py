"""Property-based tests for incremental maintenance: any interleaving of
inserts and deletes produces the same histogram as a from-scratch build."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datasets import SpatialDataset
from repro.geometry import Rect, RectArray
from repro.histograms import BasicGHHistogram, GHHistogram, apply_updates, merge_histograms

coords = st.floats(min_value=0, max_value=1, allow_nan=False)


@st.composite
def rect_batches(draw, max_batches=4, max_batch=12):
    """A starting set plus a sequence of (add_batch, remove_count) ops."""
    def batch(n):
        return [
            Rect.from_points(draw(coords), draw(coords), draw(coords), draw(coords))
            for _ in range(n)
        ]

    start = batch(draw(st.integers(min_value=0, max_value=max_batch)))
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_batches))):
        ops.append(
            (
                batch(draw(st.integers(min_value=0, max_value=max_batch))),
                draw(st.integers(min_value=0, max_value=max_batch)),
            )
        )
    return start, ops


@settings(max_examples=40, deadline=None)
@given(rect_batches(), st.integers(min_value=0, max_value=3),
       st.sampled_from([GHHistogram, BasicGHHistogram]))
def test_interleaved_updates_match_rebuild(case, level, hist_cls):
    start, ops = case
    live = list(start)
    hist = hist_cls.build(
        SpatialDataset("d", RectArray.from_rects(live), Rect.unit()), level
    )
    rng = np.random.default_rng(0)
    for added, remove_count in ops:
        remove_count = min(remove_count, len(live))
        removed_idx = sorted(
            rng.choice(len(live), size=remove_count, replace=False).tolist(),
            reverse=True,
        ) if remove_count else []
        removed = [live[i] for i in removed_idx]
        for i in removed_idx:
            live.pop(i)
        live.extend(added)
        hist = apply_updates(
            hist,
            added=RectArray.from_rects(added),
            removed=RectArray.from_rects(removed),
        )
    rebuilt = hist_cls.build(
        SpatialDataset("d", RectArray.from_rects(live), Rect.unit()), level
    )
    assert hist.count == rebuilt.count == len(live)
    for name in ("c", "h", "v"):
        assert np.allclose(getattr(hist, name), getattr(rebuilt, name), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(rect_batches(max_batches=1), st.integers(min_value=0, max_value=3))
def test_merge_commutative(case, level):
    start, ops = case
    other = ops[0][0]
    a = GHHistogram.build(
        SpatialDataset("a", RectArray.from_rects(start), Rect.unit()), level
    )
    b = GHHistogram.build(
        SpatialDataset("b", RectArray.from_rects(other), Rect.unit()), level
    )
    ab = merge_histograms(a, b)
    ba = merge_histograms(b, a)
    assert ab.count == ba.count
    assert np.allclose(ab.c, ba.c)
    assert np.allclose(ab.o, ba.o)
