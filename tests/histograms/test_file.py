"""Unit tests for histogram-file persistence."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.histograms import (
    BasicGHHistogram,
    GHHistogram,
    PHHistogram,
    histogram_from_bytes,
    histogram_to_bytes,
    load_histogram,
    save_histogram,
)
from repro.geometry import Rect
from tests.conftest import random_rects


@pytest.fixture
def dataset(rng):
    return SpatialDataset("d", random_rects(rng, 150), Rect.unit())


HIST_CLASSES = [PHHistogram, GHHistogram, BasicGHHistogram]


@pytest.mark.parametrize("hist_cls", HIST_CLASSES)
class TestRoundTrip:
    def test_file_round_trip(self, dataset, tmp_path, hist_cls):
        hist = hist_cls.build(dataset, 3)
        path = save_histogram(hist, tmp_path / "h.npz")
        loaded = load_histogram(path)
        assert type(loaded) is hist_cls
        assert loaded.grid == hist.grid
        assert loaded.count == hist.count
        for name, arr in hist.cell_arrays().items() if hasattr(hist, "cell_arrays") else []:
            assert np.array_equal(loaded.cell_arrays()[name], arr)

    def test_bytes_round_trip(self, dataset, hist_cls):
        hist = hist_cls.build(dataset, 2)
        blob = histogram_to_bytes(hist)
        loaded = histogram_from_bytes(blob)
        assert type(loaded) is hist_cls
        assert loaded.count == hist.count

    def test_estimates_survive_round_trip(self, dataset, tmp_path, hist_cls):
        h1 = hist_cls.build(dataset, 3)
        h2 = hist_cls.build(dataset, 3)
        before = h1.estimate_selectivity(h2)
        loaded = load_histogram(save_histogram(h1, tmp_path / "x.npz"))
        assert loaded.estimate_selectivity(h2) == before

    def test_non_unit_extent_survives(self, rng, tmp_path, hist_cls):
        extent = Rect(-3, 2, 9, 11)
        ds = SpatialDataset("w", random_rects(rng, 40, extent=extent), extent)
        hist = hist_cls.build(ds, 2)
        loaded = load_histogram(save_histogram(hist, tmp_path / "w.npz"))
        assert loaded.grid.extent == extent


class TestPHSpecifics:
    def test_avg_span_preserved(self, dataset, tmp_path):
        hist = PHHistogram.build(dataset, 4)
        loaded = load_histogram(save_histogram(hist, tmp_path / "ph.npz"))
        assert loaded.avg_span == hist.avg_span

    def test_all_eight_arrays_preserved(self, dataset, tmp_path):
        hist = PHHistogram.build(dataset, 3)
        loaded = load_histogram(save_histogram(hist, tmp_path / "ph8.npz"))
        for name, arr in hist.cell_arrays().items():
            assert np.array_equal(loaded.cell_arrays()[name], arr), name


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            histogram_to_bytes(object())  # type: ignore[arg-type]

    def test_unknown_kind_rejected(self, dataset, tmp_path):
        hist = GHHistogram.build(dataset, 1)
        path = save_histogram(hist, tmp_path / "g.npz")
        blob = dict(np.load(path, allow_pickle=False))
        blob["kind"] = np.str_("mystery")
        np.savez(path, **blob)
        with pytest.raises(ValueError, match="unknown histogram kind"):
            load_histogram(path)

    def test_suffix_added(self, dataset, tmp_path):
        hist = GHHistogram.build(dataset, 1)
        path = save_histogram(hist, tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()
