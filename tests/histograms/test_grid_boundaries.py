"""Histogram correctness when coordinates sit exactly on grid lines.

Real data snapped to coarse coordinate grids (TIGER uses fixed-point
lon/lat) constantly produces MBR edges lying exactly on histogram cell
boundaries.  The binning convention (half-open cells, boundary belongs
to the higher-index cell) must be applied consistently by every
statistic or the conservation laws break.
"""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.geometry import Rect, RectArray
from repro.histograms import (
    BasicGHHistogram,
    GHHistogram,
    PHHistogram,
    gh_selectivity,
)
from repro.join import actual_selectivity


def snapped_dataset(rng, n: int, grid: int) -> SpatialDataset:
    """Rectangles whose every coordinate is a multiple of 1/grid."""
    x0 = rng.integers(0, grid - 1, size=n)
    y0 = rng.integers(0, grid - 1, size=n)
    w = rng.integers(1, 3, size=n)
    h = rng.integers(1, 3, size=n)
    rects = RectArray(
        x0 / grid,
        y0 / grid,
        np.minimum(x0 + w, grid) / grid,
        np.minimum(y0 + h, grid) / grid,
        validate=False,
    )
    return SpatialDataset("snapped", rects)


@pytest.fixture
def snapped(rng):
    return snapped_dataset(rng, 400, 8)


class TestConservationOnBoundaries:
    @pytest.mark.parametrize("level", [1, 2, 3, 4])
    def test_gh_invariants(self, snapped, level):
        hist = GHHistogram.build(snapped, level)
        assert hist.c.sum() == 4 * len(snapped)
        assert hist.o.sum() * hist.grid.cell_area == pytest.approx(
            snapped.rects.total_area()
        )
        assert hist.h.sum() * hist.grid.cell_width == pytest.approx(
            2 * snapped.rects.widths().sum()
        )
        assert hist.v.sum() * hist.grid.cell_height == pytest.approx(
            2 * snapped.rects.heights().sum()
        )

    @pytest.mark.parametrize("level", [1, 3])
    def test_ph_conservation(self, snapped, level):
        hist = PHHistogram.build(snapped, level)
        total = (hist.cov + hist.cov_i).sum() * hist.grid.cell_area
        assert total == pytest.approx(snapped.rects.total_area())

    def test_basic_gh_counts_finite(self, snapped):
        hist = BasicGHHistogram.build(snapped, 3)
        assert hist.c.sum() == 4 * len(snapped)
        assert np.isfinite(hist.i).all()


class TestEstimationOnBoundaries:
    def test_gh_estimates_track_truth_for_snapped_data(self, rng):
        a = snapped_dataset(rng, 800, 16)
        b = snapped_dataset(rng, 800, 16)
        truth = actual_selectivity(a.rects, b.rects)
        # Level 4 = the snapping grid: every edge on a cell boundary.
        estimate = gh_selectivity(a, b, 4)
        assert estimate == pytest.approx(truth, rel=0.6)
        # Finer than the data grid still behaves.
        estimate_fine = gh_selectivity(a, b, 6)
        assert estimate_fine == pytest.approx(truth, rel=0.6)

    def test_exactly_tiling_rects(self):
        """A perfect 4x4 tiling at grid level 2: every rectangle IS a
        cell.  Conservation must be exact and the self-join estimate
        finite and positive (neighbors touch)."""
        tiles = [
            Rect(i / 4, j / 4, (i + 1) / 4, (j + 1) / 4)
            for i in range(4)
            for j in range(4)
        ]
        ds = SpatialDataset("tiles", RectArray.from_rects(tiles))
        hist = GHHistogram.build(ds, 2)
        # The tiling covers the unit square exactly once.
        assert hist.o.sum() * hist.grid.cell_area == pytest.approx(1.0)
        estimate = hist.estimate_selectivity(hist)
        assert np.isfinite(estimate)
        assert estimate > 0

    def test_corner_exactly_on_extent_far_edge(self):
        ds = SpatialDataset(
            "edge", RectArray.from_rects([Rect(0.75, 0.75, 1.0, 1.0)])
        )
        hist = GHHistogram.build(ds, 2)
        # All four corners counted (clamped into the last cells).
        assert hist.c.sum() == 4

    def test_zero_width_rect_on_gridline(self):
        ds = SpatialDataset(
            "line", RectArray.from_rects([Rect(0.5, 0.1, 0.5, 0.9)])
        )
        hist = GHHistogram.build(ds, 1)
        # The vertical segment lies exactly on the center gridline: it
        # must be assigned (to the higher cell) once, not duplicated.
        assert hist.v.sum() * hist.grid.cell_height == pytest.approx(2 * 0.8)
        assert hist.o.sum() == 0.0
