"""Unit tests for the grid machinery underlying PH and GH."""

import numpy as np
import pytest

from repro.geometry import Rect, RectArray
from repro.histograms import MAX_LEVEL, Grid
from tests.conftest import random_rects


class TestGeometry:
    def test_level_zero_single_cell(self):
        grid = Grid(Rect.unit(), 0)
        assert grid.side == 1
        assert grid.cell_count == 1
        assert grid.cell_rect(0, 0) == Rect.unit()

    def test_cell_counts_are_powers_of_four(self):
        for level in range(5):
            assert Grid(Rect.unit(), level).cell_count == 4**level

    def test_cell_dimensions(self):
        grid = Grid(Rect(0, 0, 8, 4), 2)
        assert grid.cell_width == 2.0
        assert grid.cell_height == 1.0
        assert grid.cell_area == 2.0

    def test_cell_rect_tiling(self):
        grid = Grid(Rect.unit(), 1)
        assert grid.cell_rect(0, 0) == Rect(0, 0, 0.5, 0.5)
        assert grid.cell_rect(1, 1) == Rect(0.5, 0.5, 1, 1)

    def test_cell_rect_out_of_range(self):
        with pytest.raises(IndexError):
            Grid(Rect.unit(), 1).cell_rect(2, 0)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            Grid(Rect.unit(), -1)
        with pytest.raises(ValueError):
            Grid(Rect.unit(), MAX_LEVEL + 1)

    def test_degenerate_extent_rejected(self):
        with pytest.raises(ValueError):
            Grid(Rect(0, 0, 0, 1), 2)

    def test_equality_and_hash(self):
        assert Grid(Rect.unit(), 3) == Grid(Rect.unit(), 3)
        assert Grid(Rect.unit(), 3) != Grid(Rect.unit(), 4)
        assert hash(Grid(Rect.unit(), 3)) == hash(Grid(Rect.unit(), 3))


class TestIndexing:
    def test_interior_point(self):
        grid = Grid(Rect.unit(), 2)  # 4x4
        assert grid.column_of(np.array([0.3]))[0] == 1
        assert grid.row_of(np.array([0.8]))[0] == 3

    def test_gridline_belongs_to_higher_cell(self):
        grid = Grid(Rect.unit(), 2)
        assert grid.column_of(np.array([0.25]))[0] == 1

    def test_far_edge_clamped_to_last_cell(self):
        grid = Grid(Rect.unit(), 2)
        assert grid.column_of(np.array([1.0]))[0] == 3
        assert grid.row_of(np.array([1.0]))[0] == 3

    def test_out_of_extent_clamped(self):
        grid = Grid(Rect.unit(), 2)
        assert grid.column_of(np.array([-5.0]))[0] == 0
        assert grid.column_of(np.array([5.0]))[0] == 3

    def test_cell_ranges(self):
        grid = Grid(Rect.unit(), 2)
        rects = RectArray.from_rects([Rect(0.1, 0.1, 0.6, 0.3)])
        i0, i1, j0, j1 = grid.cell_ranges(rects)
        assert (i0[0], i1[0], j0[0], j1[0]) == (0, 2, 0, 1)

    def test_span_counts(self):
        grid = Grid(Rect.unit(), 2)
        rects = RectArray.from_rects(
            [Rect(0.1, 0.1, 0.2, 0.2), Rect(0.1, 0.1, 0.6, 0.3)]
        )
        assert grid.span_counts(rects).tolist() == [1, 6]

    def test_contained_mask(self):
        grid = Grid(Rect.unit(), 2)
        rects = RectArray.from_rects(
            [Rect(0.1, 0.1, 0.2, 0.2), Rect(0.1, 0.1, 0.6, 0.3)]
        )
        assert grid.contained_mask(rects).tolist() == [True, False]


class TestOverlaps:
    def test_expansion_covers_all_cells(self):
        grid = Grid(Rect.unit(), 1)
        rects = RectArray.from_rects([Rect(0.25, 0.25, 0.75, 0.75)])
        ov = grid.overlaps(rects)
        assert sorted(ov.flat.tolist()) == [0, 1, 2, 3]
        assert np.all(ov.rect == 0)

    def test_clipped_areas_sum_to_rect_area(self, rng):
        """Clipping at cell boundaries is a partition of each rectangle:
        the additive property both histogram schemes depend on."""
        grid = Grid(Rect.unit(), 3)
        rects = random_rects(rng, 200, max_side=0.3)
        ov = grid.overlaps(rects)
        per_rect = np.zeros(len(rects))
        np.add.at(per_rect, ov.rect, ov.clipped.areas())
        assert np.allclose(per_rect, rects.areas())

    def test_clipped_pieces_inside_their_cells(self, rng):
        grid = Grid(Rect.unit(), 2)
        rects = random_rects(rng, 100, max_side=0.5)
        ov = grid.overlaps(rects)
        for k in range(len(ov.flat)):
            cell = grid.cell_rect(int(ov.ci[k]), int(ov.cj[k]))
            assert cell.contains_rect(ov.clipped[k])

    def test_empty_input(self):
        ov = Grid(Rect.unit(), 2).overlaps(RectArray.empty())
        assert len(ov.flat) == 0
        assert len(ov.clipped) == 0

    def test_flat_index_consistency(self, rng):
        grid = Grid(Rect.unit(), 4)
        ov = grid.overlaps(random_rects(rng, 50))
        assert np.array_equal(ov.flat, ov.cj * grid.side + ov.ci)

    def test_point_rects_single_cell(self, rng):
        grid = Grid(Rect.unit(), 3)
        points = RectArray.from_points(rng.random(50), rng.random(50))
        ov = grid.overlaps(points)
        assert len(ov.flat) == 50  # one cell each
        assert np.all(ov.clipped.areas() == 0)
