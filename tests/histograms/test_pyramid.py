"""Unit tests for GH pyramids (exact multi-resolution histograms)."""

import numpy as np
import pytest

from repro.datasets import SpatialDataset, make_clustered, make_points_like
from repro.geometry import Rect
from repro.histograms import GHHistogram, GHPyramid, downsample_gh
from tests.conftest import random_rects


@pytest.fixture
def dataset(rng):
    return SpatialDataset("d", random_rects(rng, 500, max_side=0.2))


class TestDownsample:
    @pytest.mark.parametrize("level", [1, 3, 5])
    def test_exact_against_direct_build(self, dataset, level):
        """The heart of the pyramid: downsampling is bit-exact (up to
        float summation order) against building at the coarser level."""
        fine = GHHistogram.build(dataset, level)
        coarse = downsample_gh(fine)
        direct = GHHistogram.build(dataset, level - 1)
        assert coarse.grid == direct.grid
        assert coarse.count == direct.count
        assert np.allclose(coarse.c, direct.c)
        assert np.allclose(coarse.o, direct.o)
        assert np.allclose(coarse.h, direct.h)
        assert np.allclose(coarse.v, direct.v)

    def test_exact_for_point_data(self):
        ds = make_points_like(2000, seed=160)
        fine = GHHistogram.build(ds, 4)
        assert np.allclose(downsample_gh(fine).c, GHHistogram.build(ds, 3).c)

    def test_exact_on_anisotropic_extent(self, rng):
        extent = Rect(-10, 5, 50, 11)
        ds = SpatialDataset("w", random_rects(rng, 300, extent=extent), extent)
        fine = GHHistogram.build(ds, 4)
        direct = GHHistogram.build(ds, 3)
        coarse = downsample_gh(fine)
        assert np.allclose(coarse.o, direct.o)
        assert np.allclose(coarse.h, direct.h)

    def test_level_zero_rejected(self, dataset):
        with pytest.raises(ValueError):
            downsample_gh(GHHistogram.build(dataset, 0))

    def test_repeated_downsampling_reaches_level0(self, dataset):
        hist = GHHistogram.build(dataset, 4)
        for _ in range(4):
            hist = downsample_gh(hist)
        direct = GHHistogram.build(dataset, 0)
        assert np.allclose(hist.c, direct.c)
        assert np.allclose(hist.o, direct.o)


class TestGHPyramid:
    def test_every_level_matches_direct_build(self, dataset):
        pyramid = GHPyramid(dataset, 5)
        for level in range(6):
            direct = GHHistogram.build(dataset, level)
            assert np.allclose(pyramid[level].c, direct.c)
            assert np.allclose(pyramid[level].o, direct.o)

    def test_estimates_match_direct(self, dataset, rng):
        other = SpatialDataset("o", random_rects(rng, 400))
        p1 = GHPyramid(dataset, 5)
        p2 = GHPyramid(other, 5)
        for level in (0, 2, 4):
            direct = GHHistogram.build(dataset, level).estimate_selectivity(
                GHHistogram.build(other, level)
            )
            assert p1.estimate_selectivity(p2, level) == pytest.approx(direct)

    def test_lazy_caching(self, dataset):
        pyramid = GHPyramid(dataset, 6)
        assert set(pyramid._levels) == {6}
        pyramid[3]
        assert set(pyramid._levels) == {3, 4, 5, 6}
        first = pyramid[3]
        assert pyramid[3] is first

    def test_out_of_range_level(self, dataset):
        pyramid = GHPyramid(dataset, 4)
        with pytest.raises(IndexError):
            pyramid[5]
        with pytest.raises(IndexError):
            pyramid[-1]

    def test_count_property(self, dataset):
        assert GHPyramid(dataset, 3).count == len(dataset)

    def test_pyramid_much_cheaper_than_rebuilds(self):
        """One fine build + downsampling beats building every level."""
        import time

        ds = make_clustered(30_000, seed=161)

        def time_pyramid() -> float:
            t0 = time.perf_counter()
            pyramid = GHPyramid(ds, 8)
            for level in range(9):
                pyramid[level]
            return time.perf_counter() - t0

        def time_rebuilds() -> float:
            t0 = time.perf_counter()
            for level in range(9):
                GHHistogram.build(ds, level)
            return time.perf_counter() - t0

        # Best-of-two each, interleaved, to wash out cache warm-up noise.
        pyramid_seconds = min(time_pyramid(), time_pyramid())
        rebuild_seconds = min(time_rebuilds(), time_rebuilds())
        assert pyramid_seconds < rebuild_seconds
