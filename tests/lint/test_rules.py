"""Per-rule tests against the fixture corpus under ``fixtures/``.

Each fixture file mirrors the ``repro`` package shape (the rules decide
applicability by dotted module name, recovered from the ``__init__.py``
chain), holds known violations at known lines, and is linted by passing
its path explicitly — tree-wide runs skip ``fixtures`` directories.
"""

from pathlib import Path

import pytest

from repro.lint import RULES, lint_file
from repro.lint.context import module_name_for

FIXTURES = Path(__file__).parent / "fixtures"
PKG = FIXTURES / "repro"


def rules_hit(path, **kwargs):
    return [(d.rule, d.line) for d in lint_file(path, **kwargs)]


class TestModuleIdentity:
    def test_fixture_tree_maps_to_repro_modules(self):
        assert module_name_for(PKG / "histograms" / "clean.py") == "repro.histograms.clean"
        assert module_name_for(PKG / "__init__.py") == "repro"

    def test_file_outside_any_package_has_no_module(self, tmp_path):
        loose = tmp_path / "loose.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == ""

    def test_rules_do_not_apply_outside_repro(self, tmp_path):
        loose = tmp_path / "loose.py"
        loose.write_text("import numpy as np\nx = np.random.uniform()\n")
        assert lint_file(loose) == []


class TestR001GlobalRNG:
    def test_flags_global_rng_calls_only(self):
        hits = rules_hit(PKG / "histograms" / "r001_global_rng.py")
        assert hits == [("R001", 9), ("R001", 10), ("R001", 11)]

    def test_messages_name_the_offending_call(self):
        diags = lint_file(PKG / "histograms" / "r001_global_rng.py")
        assert "np.random.uniform" in diags[0].message
        assert "random.choice" in diags[2].message


class TestR002MissingCheckpoint:
    def test_flags_long_uncovered_loop(self):
        hits = rules_hit(PKG / "histograms" / "r002_long_loop.py")
        assert hits == [("R002", 8), ("R002", 24)]

    def test_checkpoint_outside_the_loop_is_not_coverage(self):
        # build_outer_checkpoint checkpoints before AND after its loop;
        # neither runs per iteration, so the loop is still flagged.
        hits = rules_hit(PKG / "histograms" / "r002_long_loop.py")
        assert ("R002", 24) in hits

    def test_covered_loops_are_clean(self):
        assert rules_hit(PKG / "histograms" / "r002_covered_loop.py") == []

    def test_rule_only_applies_to_kernel_subpackages(self):
        # Same long loop shape, but repro.core is not a kernel package.
        hits = rules_hit(PKG / "core" / "r003_raises.py", select=["R002"])
        assert hits == []


class TestR003ErrorTaxonomy:
    def test_flags_unapproved_raises(self):
        hits = rules_hit(PKG / "core" / "r003_raises.py")
        assert hits == [("R003", 10), ("R003", 12), ("R003", 14), ("R003", 15)]

    def test_live_taxonomy_is_derived_from_errors_py(self):
        # The real tree raises its own taxa freely: repro/runtime.py
        # raises EstimationTimeout, discovered from repro/errors.py.
        src = Path(__file__).parents[2] / "src" / "repro" / "runtime.py"
        assert rules_hit(src, select=["R003"]) == []


class TestR004ExplicitDtype:
    def test_flags_dtypeless_constructors(self):
        hits = rules_hit(PKG / "histograms" / "r004_missing_dtype.py")
        assert hits == [("R004", 7), ("R004", 8), ("R004", 9), ("R004", 10)]

    def test_positional_dtype_counts_as_explicit(self):
        diags = lint_file(PKG / "histograms" / "r004_missing_dtype.py")
        assert all(d.line < 14 for d in diags)


class TestR005BroadExcept:
    def test_flags_swallowing_handlers(self):
        hits = rules_hit(PKG / "histograms" / "r005_broad_except.py")
        assert hits == [("R005", 7), ("R005", 14), ("R005", 21)]

    def test_reraising_cleanup_handler_is_exempt(self):
        diags = lint_file(PKG / "histograms" / "r005_broad_except.py")
        assert all(d.line != 28 for d in diags)


class TestR006ExportSoundness:
    def test_flags_ghost_duplicate_and_unresolved(self):
        diags = lint_file(PKG / "__init__.py", select=["R006"])
        messages = [d.message for d in diags]
        assert len(diags) == 4
        assert any("'missing_name'" in m and "never bound" in m for m in messages)
        assert any("nosuchmod" in m and "does not resolve" in m for m in messages)
        assert any("'ghost'" in m for m in messages)
        assert any("duplicate" in m and "'exists'" in m for m in messages)

    def test_only_init_modules_are_checked(self):
        hits = rules_hit(PKG / "histograms" / "clean.py", select=["R006"])
        assert hits == []


class TestR007WallClock:
    def test_flags_wall_clock_call_and_from_import(self):
        hits = rules_hit(PKG / "core" / "r007_wall_clock.py")
        assert hits == [("R007", 4), ("R007", 10)]

    def test_perf_counter_and_unrelated_dotted_time_are_clean(self):
        diags = lint_file(PKG / "core" / "r007_wall_clock.py")
        assert all(d.line in (4, 10) for d in diags)

    def test_live_tree_timing_code_is_clean(self):
        # The estimator's timing breakdown is perf_counter-based.
        src = Path(__file__).parents[2] / "src" / "repro" / "sampling" / "estimator.py"
        assert rules_hit(src, select=["R007"]) == []


class TestSuppressions:
    def test_suppressed_file_is_clean(self):
        assert rules_hit(PKG / "histograms" / "suppressed.py") == []

    def test_suppression_is_rule_specific(self):
        # The same directives must not hide a different rule.
        diags = lint_file(PKG / "histograms" / "r001_global_rng.py", ignore=["R001"])
        assert diags == []  # sanity: nothing else in that file
        source = (PKG / "histograms" / "suppressed.py").read_text()
        assert "disable=R001" in source and "disable=R004" in source

    def test_trailing_disable_file_degrades_to_same_line_scope(self, tmp_path):
        # A disable-file typed where a disable was meant (trailing a
        # statement) must not blank the rule for the whole file: it only
        # suppresses the line it sits on.
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        mod = pkg / "mod.py"
        mod.write_text(
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:  # repro-lint: disable-file=R005\n"
            "        pass\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_hit(mod, select=["R005"]) == [("R005", 8)]


class TestR008BlockingSleep:
    def test_flags_direct_aliased_and_async_sleeps(self):
        hits = rules_hit(PKG / "service" / "r008_sleeps.py")
        assert hits == [("R008", 9), ("R008", 13), ("R008", 19), ("R008", 25)]

    def test_async_violation_points_at_asyncio_sleep(self):
        diags = lint_file(PKG / "service" / "r008_sleeps.py")
        async_hits = [d for d in diags if d.line == 25]
        assert len(async_hits) == 1
        assert "asyncio.sleep" in async_hits[0].message
        assert "event loop" in async_hits[0].message

    def test_sanctioned_backoff_site_is_exempt(self):
        hits = rules_hit(PKG / "service" / "resilient.py")
        assert hits == [("R008", 14)]  # helper_pause only; _backoff is clean

    def test_live_resilient_and_faults_modules_are_clean(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro" / "service"
        assert rules_hit(src / "resilient.py", select=["R008"]) == []
        assert rules_hit(src / "faults.py", select=["R008"]) == []


class TestR009SingleWriter:
    def test_flags_stray_writers_at_exact_lines(self):
        hits = rules_hit(PKG / "perf" / "r009_persistence.py")
        assert hits == [
            ("R009", 9), ("R009", 10), ("R009", 11),
            ("R009", 15), ("R009", 19), ("R009", 24),
        ]

    def test_messages_point_at_the_catalog(self):
        diags = lint_file(PKG / "perf" / "r009_persistence.py")
        assert "np.save" in diags[0].message
        assert "repro.store" in diags[0].message
        assert "pickle.dump" in diags[3].message
        assert "tmp-write/fsync/rename" in diags[4].message

    def test_sanctioned_store_module_is_exempt(self):
        assert rules_hit(PKG / "store" / "writer.py", select=["R009"]) == []

    def test_live_src_tree_is_clean(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        for name in ("eval/report.py", "serve/shards.py", "perf/cache.py"):
            assert rules_hit(src / name, select=["R009"]) == []


class TestCleanFixtureAndParseErrors:
    def test_clean_fixture_produces_no_diagnostics(self):
        assert rules_hit(PKG / "histograms" / "clean.py") == []

    def test_parse_error_is_reported_not_raised(self):
        diags = lint_file(FIXTURES / "parse_error.py")
        assert [d.rule for d in diags] == ["E001"]
        assert diags[0].line == 1

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_file(PKG / "histograms" / "clean.py", select=["R999"])


class TestRegistry:
    def test_all_nine_domain_rules_registered(self):
        assert sorted(RULES) == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
            "R009",
        ]

    def test_rule_metadata_complete(self):
        for rule in RULES.values():
            assert rule.name and rule.summary
