"""Regression tests for the live R010/R012 fixes this lint layer forced.

Each fixed loop now reaches ``runtime.checkpoint``; these tests pin the
behavior the fix bought — the stages actually fire, and a zero deadline
cancels the kernels mid-loop — so a refactor that silently drops a
checkpoint fails here, not just in the (structural) lint gate.
"""

import numpy as np
import pytest

from repro.datasets import SpatialDataset
from repro.errors import EstimationTimeout
from repro.geometry import Rect
from repro.histograms.pyramid import GHPyramid
from repro.predicates import STANDARD_PREDICATES
from repro.predicates.joins import naive_predicate_count
from repro.rtree import RTree
from repro.rtree.join import rtree_join_count
from repro.rtree.query import search_intersecting
from repro.runtime import Deadline, runtime_scope

from tests.conftest import random_rects


@pytest.fixture
def rng():
    return np.random.default_rng(1106)


class Recorder:
    def __init__(self):
        self.stages = []

    def on_checkpoint(self, stage):
        self.stages.append(stage)


class TestPredicateJoinCheckpoints:
    def test_inner_block_loop_checkpoints(self, rng):
        a = random_rects(rng, 200, max_side=0.2)
        b = random_rects(rng, 200, max_side=0.2)
        hook = Recorder()
        with runtime_scope(hook=hook):
            naive_predicate_count(a, b, STANDARD_PREDICATES["intersects"], block=50)
        blocks = hook.stages.count("predicates.naive.block")
        # 4 outer blocks x 4 inner blocks (plus the per-outer poll):
        # an outer-only loop would stop at 4
        assert blocks >= 16

    def test_zero_deadline_cancels_mid_join(self, rng):
        a = random_rects(rng, 200, max_side=0.2)
        b = random_rects(rng, 200, max_side=0.2)
        with runtime_scope(deadline=Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                naive_predicate_count(
                    a, b, STANDARD_PREDICATES["intersects"], block=50
                )


class TestRTreeCheckpoints:
    def test_insert_query_and_join_checkpoint(self, rng):
        rects = random_rects(rng, 300, max_side=0.2)
        hook = Recorder()
        with runtime_scope(hook=hook):
            tree = RTree.from_rect_array(rects, max_entries=8)
            search_intersecting(tree.root, Rect(0.0, 0.0, 0.5, 0.5))
            rtree_join_count(tree, tree)
        assert "rtree.insert" in hook.stages
        assert "rtree.split" in hook.stages
        assert "rtree.query.node" in hook.stages
        assert "rtree.join.node" in hook.stages

    def test_zero_deadline_cancels_dynamic_build(self, rng):
        rects = random_rects(rng, 300, max_side=0.2)
        with runtime_scope(deadline=Deadline(0.0)):
            with pytest.raises(EstimationTimeout):
                RTree.from_rect_array(rects, max_entries=8)


class TestPyramidCheckpoints:
    def test_downsample_chain_checkpoints(self, rng):
        ds = SpatialDataset("d", random_rects(rng, 200, max_side=0.2))
        pyramid = GHPyramid(ds, 4)
        hook = Recorder()
        with runtime_scope(hook=hook):
            pyramid[0]  # materializes levels 3..0 through downsample_gh
        assert hook.stages.count("pyramid.downsample") >= 4
