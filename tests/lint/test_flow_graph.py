"""Unit tests for the flow layer's building blocks: summary extraction,
JSON round-tripping, call-graph resolution, and the dataflow driver."""

import ast

from repro.lint.flow.dataflow import (
    WEIGHT_CAP,
    entry_locks,
    reaches,
    reaches_with_witness,
    transitive_weights,
)
from repro.lint.flow.graph import (
    CallGraph,
    ModuleSummary,
    digest_source,
    extract_summary,
)


def summarize(module: str, source: str) -> ModuleSummary:
    return extract_summary(
        module=module,
        path=f"{module.replace('.', '/')}.py",
        source=source,
        tree=ast.parse(source),
        digest=digest_source(source.encode()),
        is_pkg=False,
    )


def graph_of(**modules: str) -> CallGraph:
    return CallGraph({m: summarize(m, src) for m, src in modules.items()})


class TestSummaryExtraction:
    def test_functions_and_methods_get_qualified_ids(self):
        s = summarize(
            "repro.m",
            "def f():\n    pass\n\nclass C:\n    def g(self):\n        pass\n",
        )
        quals = {fn.qual for fn in s.functions}
        assert quals == {"f", "C.g"}

    def test_deadline_params_and_spends_are_recorded(self):
        s = summarize(
            "repro.m",
            "from repro.runtime import Deadline\n"
            "def f(budget_s):\n"
            "    a = Deadline(5.0)\n"
            "    b = Deadline(budget_s)\n"
            "    c = Deadline(a.remaining)\n",
        )
        (fn,) = s.functions
        assert fn.has_deadline_param
        assert [derived for _l, _c, derived in fn.spends] == [False, True, True]

    def test_json_roundtrip_is_lossless(self):
        s = summarize(
            "repro.m",
            "import threading\n"
            "from repro.runtime import checkpoint\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # guarded-by: _lock\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "def loop(xs):\n"
            "    for x in xs:\n"
            "        checkpoint('s')\n",
        )
        back = ModuleSummary.from_json(s.to_json())
        assert back == s

    def test_guarded_by_comment_binds_to_the_assignment(self):
        s = summarize(
            "repro.m",
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._n = 0  # guarded-by: _lock\n",
        )
        (cls,) = s.classes
        assert cls.guarded == (("_n", "_lock"),)


class TestCallGraphResolution:
    def test_module_local_and_imported_calls_resolve(self):
        g = graph_of(
            **{
                "repro.a": "def helper():\n    pass\n",
                "repro.b": (
                    "from repro.a import helper\n"
                    "def caller():\n"
                    "    helper()\n"
                    "    local()\n"
                    "def local():\n"
                    "    pass\n"
                ),
            }
        )
        targets = {
            t for e in g.edges["repro.b:caller"] for t in e.targets
        }
        assert targets == {"repro.a:helper", "repro.b:local"}

    def test_receiver_annotation_dispatch_includes_overrides(self):
        g = graph_of(
            **{
                "repro.base": (
                    "class Base:\n"
                    "    def work(self):\n"
                    "        pass\n"
                    "class Sub(Base):\n"
                    "    def work(self):\n"
                    "        pass\n"
                    "def drive(obj: Base):\n"
                    "    obj.work()\n"
                ),
            }
        )
        targets = {
            t for e in g.edges["repro.base:drive"] for t in e.targets
        }
        assert targets == {"repro.base:Base.work", "repro.base:Sub.work"}

    def test_unresolved_dynamic_calls_have_no_targets(self):
        g = graph_of(
            **{"repro.a": "def f(cb):\n    cb()\n    unknown_name()\n"}
        )
        targets = [t for e in g.edges["repro.a:f"] for t in e.targets]
        assert targets == []


class TestDataflow:
    def test_reaches_is_transitive_across_modules(self):
        g = graph_of(
            **{
                "repro.runtime": "def checkpoint(stage):\n    pass\n",
                "repro.a": (
                    "from repro.runtime import checkpoint\n"
                    "def inner():\n"
                    "    checkpoint('x')\n"
                ),
                "repro.b": (
                    "from repro.a import inner\n"
                    "def outer():\n"
                    "    inner()\n"
                ),
            }
        )
        covered = reaches(g, lambda t: t == "repro.runtime:checkpoint")
        assert {"repro.a:inner", "repro.b:outer"} <= covered

    def test_witness_chain_names_the_path(self):
        g = graph_of(
            **{
                "repro.a": (
                    "def low(conn):\n"
                    "    conn.recv()\n"
                    "def mid(conn):\n"
                    "    low(conn)\n"
                ),
            }
        )
        witness = reaches_with_witness(g, {"repro.a:low": ".recv()"})
        assert "low" in witness["repro.a:mid"]

    def test_transitive_weights_saturate_on_recursion(self):
        g = graph_of(
            **{
                "repro.a": (
                    "def f(n):\n"
                    "    if n:\n"
                    "        f(n - 1)\n"
                ),
            }
        )
        assert transitive_weights(g)["repro.a:f"] == WEIGHT_CAP

    def test_entry_locks_intersect_over_call_sites(self):
        g = graph_of(
            **{
                "repro.a": (
                    "import threading\n"
                    "class C:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def helper(self):\n"
                    "        pass\n"
                    "    def locked(self):\n"
                    "        with self._lock:\n"
                    "            self.helper()\n"
                    "    def unlocked(self):\n"
                    "        self.helper()\n"
                ),
            }
        )
        token = ("repro.a:C", "_lock")
        universe = frozenset([token])

        def canonical(caller, edge):
            return frozenset(
                token for _recv, attr in edge.site.locks
                for token in [("repro.a:C", attr)]
            )

        entry = entry_locks(g, universe, canonical)
        # helper is entered both with and without the lock -> intersection
        # is empty; locked/unlocked are entry points -> nothing held.
        assert entry["repro.a:C.helper"] == frozenset()
        assert entry["repro.a:C.locked"] == frozenset()
