"""Fixture mirror of :mod:`repro.runtime`.

The flow rules resolve call targets through the module graph, so the
fixture project needs a ``repro.runtime`` of its own for ``checkpoint``
(R010's reachability target) and ``Deadline`` (R014's spend site) to
resolve against.
"""


def checkpoint(stage: str) -> None:
    """Cooperative cancellation point (fixture stand-in)."""


class Deadline:
    """Wall-clock budget (fixture stand-in)."""

    def __init__(self, seconds: float) -> None:
        self.seconds = float(seconds)

    @property
    def remaining(self) -> float:
        return self.seconds
