"""R011 fixtures: blocking primitives on the event-loop thread.

Two true positives (a direct ``np.load`` and a transitive pipe wait)
and two sanctioned shapes (the executor hop and an awaited async
callee, which owns its own report).
"""

import asyncio

import numpy as np
from multiprocessing.connection import Connection


def _sync_recv(conn: Connection):
    if conn.poll(1.0):
        return conn.recv()
    return None


async def direct_block(path):
    """TP: np.load directly inside an async def."""
    return np.load(path)


async def transitive_block(conn: Connection):
    """TP: the sync helper reaches a pipe wait with no executor hop."""
    return _sync_recv(conn)


async def executor_hop(path):
    """Fine: the blocking callable crosses into the executor."""
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, np.load, path)


async def async_caller(conn: Connection):
    """Fine here: the async callee gets its own report, not this site."""
    return await transitive_block(conn)
