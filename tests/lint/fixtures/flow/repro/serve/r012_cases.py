"""R012 fixtures: ``# guarded-by:`` lock discipline.

Two true positives (an unlocked read and a helper reachable from an
unlocked entry) and the disciplined shapes the rule must accept
(lexical ``with`` and a helper whose every caller holds the lock).
"""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0  # guarded-by: _lock
        self._peak = 0  # guarded-by: _lock

    def add(self, n: int) -> None:
        with self._lock:
            self._total += n
            if self._total > self._peak:
                self._peak = self._total

    def racy_read(self) -> int:
        """TP: reads a guarded attribute with no lock on any path."""
        return self._total

    def _bump_locked(self, n: int) -> None:
        self._total += n  # TP while any caller enters without the lock

    def locked_entry(self, n: int) -> None:
        with self._lock:
            self._bump_locked(n)

    def racy_entry(self, n: int) -> None:
        self._bump_locked(n)


class Disciplined:
    """Every access path holds the lock — nothing here is flagged."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: list = []  # guarded-by: _lock

    def push(self, item) -> None:
        with self._lock:
            self._append_locked(item)

    def _append_locked(self, item) -> None:
        self._items.append(item)
