"""R014 fixtures: one call chain, one wall-clock budget.

Two true positives (a carrier re-spending, and a fresh spend downstream
of a carrier) and the sanctioned shapes: the entry-point spend, the
derived spend, and the origin-of-chain cycle where the only "carrier"
upstream is a helper threading the budget this very function created.
"""

from ..runtime import Deadline


def entry(work) -> float:
    """Fine: the entry point spends once."""
    deadline = Deadline(5.0)
    return stage_one(work, deadline.remaining)


def stage_one(work, budget_s: float) -> float:
    """Fine: derived from the incoming budget, not the wall clock."""
    scoped = Deadline(budget_s)
    return run(work, scoped)


def run(work, deadline: Deadline) -> float:
    """TP (type A): already receives a budget, spends a fresh one."""
    fresh = Deadline(2.0)
    return finish(work) + fresh.remaining


def finish(work) -> float:
    """TP (type B): downstream of run's budget, re-spends wall-clock."""
    fresh = Deadline(3.0)
    return float(work) + fresh.remaining


def cycle_entry(work) -> float:
    """Fine: origin of the chain its own helpers thread back into it."""
    fresh = Deadline(4.0)
    return cycle_run(work, fresh)


def cycle_run(work, deadline: Deadline) -> float:
    if work > 1:
        return cycle_entry(work - 1)
    return float(deadline.remaining)
