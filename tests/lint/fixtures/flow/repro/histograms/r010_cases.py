"""R010 fixtures: kernel loops that must reach ``runtime.checkpoint``.

Two true positives (``uncovered_local``, ``uncovered_through_helper``)
and two loops the interprocedural rule must leave alone (lexical cover
and cover through a callee).
"""

from ..runtime import checkpoint
from .r010_helpers import chatty_helper, far_helper


def local_cover(values):
    """Covered: the loop body itself checkpoints (lexical, like R002)."""
    total = 0
    for v in values:
        checkpoint("fixture.local")
        a = v + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        g = f + c
        total += g
    return total


def helper_cover(values):
    """Covered: a long callee transitively reaches checkpoint."""
    total = 0
    for v in values:
        total += chatty_helper(v)
    return total


def uncovered_local(values):
    """TP: long body, no checkpoint on any path."""
    total = 0
    for v in values:
        a = v + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        g = f + c
        h = g + d
        total += h
    return total


def uncovered_through_helper(values):
    """TP: the weight is in a cross-module callee with no checkpoint."""
    total = 0
    for v in values:
        total += far_helper(v)
    return total


def caller_side_disable(values):
    """A caller's disable must not silence the callee-loop diagnostic."""
    return uncovered_local(values)  # repro-lint: disable=R010
