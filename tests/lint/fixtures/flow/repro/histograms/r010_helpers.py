"""Helpers the R010 fixtures call across the module boundary.

The disable-file below covers *this* module only.  ``far_helper`` is a
transit point on an uncovered path whose loop lives in ``r010_cases`` —
the diagnostic lands there, and this file's suppression must not reach
it (suppression interplay: only the diagnostic's own file counts).
"""
# repro-lint: disable-file=R010

from ..runtime import checkpoint


def chatty_helper(v):
    """Long AND checkpointing: loops calling this are covered."""
    checkpoint("fixture.helper")
    a = v + 1
    b = a * 2
    c = b + 3
    d = c * 4
    e = d + 5
    f = e * 6
    g = f + 7
    h = g + 8
    return h


def far_helper(v):
    """Long and checkpoint-free: loops calling this are NOT covered."""
    a = v + 1
    b = a * 2
    c = b + 3
    d = c * 4
    e = d + 5
    f = e * 6
    g = f + 7
    h = g * 8
    i2 = h + 9
    return i2
