"""R013 fixtures: unpicklable values crossing the process boundary.

Three true positives — a lock-holding cache into ``Pipe.send``, a
config that *transitively* holds the cache into a pool submission, and
an unpicklable value threaded through a helper's sink parameter — plus
the sanctioned shapes (plain payloads; pipe ends handed to a child
process via multiprocessing's own reduction).
"""

import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process
from multiprocessing.connection import Connection


class TileCache:
    """Holds a lock: cannot cross a process boundary."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tiles: dict = {}


class ReplicaConfig:
    """Holds a TileCache: transitively unpicklable."""

    cache: TileCache

    def __init__(self, cache: TileCache) -> None:
        self.cache = cache


def _work(config):
    return config


def ship_cache(conn: Connection, cache: TileCache) -> None:
    """TP: a lock holder into a pipe."""
    conn.send(cache)


def ship_config(pool: ProcessPoolExecutor, config: ReplicaConfig):
    """TP: the transitive closure catches the cache inside the config."""
    return pool.submit(_work, config)


def _relay(conn: Connection, item) -> None:
    conn.send(item)


def ship_via_helper(conn: Connection, cache: TileCache) -> None:
    """TP: the helper's sink parameter taints this call site."""
    _relay(conn, cache)


def ship_plain(conn: Connection, payload: tuple) -> None:
    """Fine: plain data crosses freely."""
    conn.send(payload)


def hand_pipe_to_child(child: Connection) -> None:
    """Fine: Process args carry pipe ends via mp's own reduction."""
    proc = Process(target=_work, args=(child,))
    proc.start()
