"""Fixture: the sanctioned backoff site — R008 at line 14 only."""

import time


def _backoff(attempt: int) -> None:
    # Sanctioned: (repro.service.resilient, _backoff) is the one place
    # library code may block between retries.
    time.sleep(0.01 * (2**attempt))


def helper_pause() -> None:
    # Same module, different function: not sanctioned.
    time.sleep(0.1)
