"""Fixture: blocking sleeps — R008 at lines 9, 13, 19, 25."""

import asyncio
import time
from time import sleep, sleep as snooze


def retry_pause() -> None:
    time.sleep(0.1)


def aliased_pause() -> None:
    sleep(0.1)


def renamed_pause() -> None:
    nested = 1
    if nested:
        snooze(0.1)


async def frozen_loop() -> None:
    # Blocking inside a coroutine: stalls every other request.
    await asyncio.sleep(0)
    time.sleep(0.1)


async def cooperative() -> None:
    # The sanctioned way to pause in async code.
    await asyncio.sleep(0.1)


def no_pause() -> float:
    # Dotted names ending in .sleep on other roots are not time.sleep.
    return time.perf_counter()
