"""Fixture package mirroring ``repro.service`` for rule tests."""
