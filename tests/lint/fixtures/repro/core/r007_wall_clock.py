"""Fixture: wall-clock timing — R007 at lines 4 and 10."""

import time
from time import time as wall

import numpy as np


def elapsed(started: float) -> float:
    return time.time() - started


def stamp() -> float:
    return wall()


def fine(started: float) -> float:
    # perf_counter is the sanctioned duration source.
    return time.perf_counter() - started


def unrelated() -> np.ndarray:
    # Dotted names ending in .time on other roots are not the wall clock.
    return np.empty(0, dtype=np.float64)
