"""Fixture subpackage (clean)."""
