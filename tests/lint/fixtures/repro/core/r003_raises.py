"""Fixture: R003 — raise sites outside the error taxonomy."""


class CustomError(Exception):
    pass


def bad_raises(flag):
    if flag == 1:
        raise RuntimeError("use EstimatorUnavailable/Transient instead")  # R003
    if flag == 2:
        raise TimeoutError("use EstimationTimeout instead")  # R003
    if flag == 3:
        raise CustomError("ad-hoc exception class")  # R003
    raise Exception("never raise bare Exception")  # R003


def good_raises(flag, exc):
    if flag == 1:
        raise ValueError("approved builtin")
    if flag == 2:
        raise exc  # re-raising a variable is not classifiable statically
    try:
        return 1 / flag
    except ZeroDivisionError:
        raise  # bare re-raise
