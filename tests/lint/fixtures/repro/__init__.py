"""Fixture package root: R006 export-soundness violations.

This tree mirrors the ``repro`` package shape so the lint rules treat
its files as library modules; it lives under a ``fixtures`` directory,
which tree-wide lint runs never descend into.
"""

from .histograms import missing_name  # unbound at target -> R006
from .nosuchmod import anything  # unresolvable module -> R006

exists = 1

__all__ = [
    "exists",
    "ghost",  # never bound -> R006
    "exists",  # duplicate -> R006
]
