"""Fixture: stray persistence writers — R009 at lines 9, 10, 11, 15, 19, 24."""

import pickle

import numpy as np


def stray_numpy_writers(path, arr) -> None:
    np.save(path, arr)
    np.savez(path, arr=arr)
    np.savez_compressed(path, arr=arr)


def stray_pickle(path, obj) -> None:
    pickle.dump(obj, path)


def stray_binary_open(path, payload: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(payload)


def keyword_mode_is_also_caught(path, payload: bytes) -> None:
    with open(path, mode="xb") as handle:  # line 24: flagged too
        handle.write(payload)


def clean_readers_and_text(path) -> str:
    # Reading (binary or not) and text-mode writes are not persistence
    # of array artifacts — reports and CSVs stay allowed everywhere.
    with open(path, "rb") as handle:
        handle.read()
    with open(path, "w") as handle:
        handle.write("report\n")
    data = np.load(path, mmap_mode="r")
    return str(data)
