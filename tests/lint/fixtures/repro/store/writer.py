"""Fixture: the sanctioned writer module — every call here is R009-clean.

Mirrors ``repro.store``'s publish path: inside the catalog package the
single-writer rule does not apply, because this *is* the single writer.
"""

import pickle

import numpy as np


def publish(path, arr, manifest: bytes) -> None:
    np.save(path, arr)
    np.savez(path, arr=arr)
    np.savez_compressed(path, arr=arr)
    with open(path, "wb") as handle:
        handle.write(manifest)
    pickle.dump(arr, path)
