"""Fixture: R001 global-RNG violations (and allowed constructor calls)."""

import random

import numpy as np


def jitter(n):
    noise = np.random.uniform(size=n)  # R001
    np.random.seed(7)  # R001
    pick = random.choice([1, 2, 3])  # R001
    return noise, pick


def seeded(n, seed):
    rng = np.random.default_rng(seed)  # allowed: explicit construction
    return rng.uniform(size=n)  # allowed: method on a Generator object
