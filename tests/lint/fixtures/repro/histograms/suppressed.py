"""Fixture: every violation here carries a suppression -> file lints clean."""

# repro-lint: disable-file=R005

import numpy as np


def jitter(n):
    return np.random.uniform(size=n)  # repro-lint: disable=R001


def accumulators(cells, values):
    c = np.zeros(cells)  # repro-lint: disable=R004
    # repro-lint: disable-next=R004
    o = np.empty(cells)
    w = np.asarray(values)  # repro-lint: disable=all
    return c, o, w


def swallow(work):
    try:
        return work()
    except Exception:  # suppressed by the disable-file directive above
        return None
