"""Fixture: long kernel loops that ARE checkpoint-covered (clean)."""

from ..runtime import checkpoint  # fixture-local; never imported at runtime


def build_strided(cells):
    total = 0
    for i, cell in enumerate(cells):  # long but covered inside the loop
        if i % 1024 == 0:
            checkpoint("fixture.build")
        a = cell + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        total += f
    return total


def drain(queue):
    total = 0
    while queue:  # long but covered: the checkpoint runs every iteration
        checkpoint("fixture.drain")
        item = queue.pop()
        a = item + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        total += e
    return total
