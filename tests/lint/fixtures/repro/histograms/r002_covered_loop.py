"""Fixture: long kernel loops that ARE checkpoint-covered (clean)."""

from ..runtime import checkpoint  # fixture-local; never imported at runtime


def build_strided(cells):
    total = 0
    for i, cell in enumerate(cells):  # long but covered inside the loop
        if i % 1024 == 0:
            checkpoint("fixture.build")
        a = cell + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        total += f
    return total


def build_outer(cells):
    checkpoint("fixture.build")  # covered by the enclosing function
    total = 0
    for cell in cells:
        a = cell + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        g = f + c
        total += g
    return total
