"""Fixture: idiomatic kernel code — must produce zero diagnostics."""

import numpy as np

from ..runtime import checkpoint  # fixture-local; never imported at runtime


def build(cells, values, rng):
    checkpoint("fixture.clean.build")
    out = np.zeros(cells, dtype=np.float64)
    weights = np.asarray(values, dtype=np.float64)
    noise = rng.uniform(size=cells)
    if weights.size != cells:
        raise ValueError("weights must match the cell count")
    for i in range(min(cells, 4)):
        out[i] += weights[i] + noise[i]
    return out
