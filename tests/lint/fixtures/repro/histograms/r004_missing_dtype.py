"""Fixture: R004 — dtype-less numpy constructors in a kernel package."""

import numpy as np


def accumulators(cells, values):
    c = np.zeros(cells)  # R004
    o = np.empty(cells)  # R004
    w = np.asarray(values)  # R004
    filled = np.full(cells, 1.0)  # R004
    return c, o, w, filled


def explicit(cells, values):
    c = np.zeros(cells, dtype=np.float64)  # allowed: dtype keyword
    w = np.asarray(values, np.float64)  # allowed: positional dtype
    idx = np.arange(cells)  # allowed: not a dtype-sensitive constructor
    return c, w, idx
