"""Fixture: R002 — a long kernel loop without a checkpoint."""


def build(cells):
    total = 0
    for cell in cells:  # R002: > 8 statements, no checkpoint
        a = cell + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        g = f + c
        h = g * d
        total += h
    return total


def short(cells):
    total = 0
    for cell in cells:  # short loop: under the threshold, not flagged
        total += cell
    return total
