"""Fixture: R002 — long kernel loops without an in-loop checkpoint."""

from ..runtime import checkpoint  # fixture-local; never imported at runtime


def build(cells):
    total = 0
    for cell in cells:  # R002: > 8 statements, no checkpoint
        a = cell + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        g = f + c
        h = g * d
        total += h
    return total


def build_outer_checkpoint(cells):
    checkpoint("fixture.outer")  # before the loop: does NOT cover it
    total = 0
    for cell in cells:  # R002: checkpoint elsewhere in the function is not coverage
        a = cell + 1
        b = a * 2
        c = b - 3
        d = c * c
        e = d + a
        f = e - b
        g = f + c
        h = g * d
        total += h
    checkpoint("fixture.outer")  # after the loop: still not coverage
    return total


def short(cells):
    total = 0
    for cell in cells:  # short loop: under the threshold, not flagged
        total += cell
    return total
