"""Fixture kernel subpackage (intentionally binds nothing)."""
