"""Fixture: R005 — broad exception handlers."""


def swallow(work):
    try:
        return work()
    except Exception:  # R005
        return None


def swallow_bare(work):
    try:
        return work()
    except:  # noqa: E722  # R005
        return None


def swallow_tuple(work):
    try:
        return work()
    except (ValueError, BaseException):  # R005
        return None


def cleanup_and_propagate(work, undo):
    try:
        return work()
    except BaseException:  # allowed: unconditionally re-raises
        undo()
        raise


def narrow(work):
    try:
        return work()
    except ValueError:  # allowed: narrow handler
        return None
