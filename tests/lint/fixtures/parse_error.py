def broken(:
    return
