"""Wall-clock budget for the whole-tree lint: the gate has to stay fast
enough to run on every commit, and the warm path has to make the cache
worth having.  Budgets are deliberately loose multiples of observed
times (~2s cold, ~0.1s warm on the CI class of machine) so the test
catches order-of-magnitude regressions, not scheduler noise."""

import time
from pathlib import Path

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]

COLD_BUDGET_S = 10.0
WARM_BUDGET_S = 1.0


def test_cold_full_tree_run_fits_the_budget(tmp_path):
    cache = tmp_path / "cache.json"
    started = time.perf_counter()
    report = run_lint([REPO_ROOT / "src"], cache=cache)
    elapsed = time.perf_counter() - started
    assert report.files_checked > 100
    assert elapsed < COLD_BUDGET_S, f"cold run took {elapsed:.2f}s"


def test_warm_full_tree_run_fits_the_budget(tmp_path):
    cache = tmp_path / "cache.json"
    run_lint([REPO_ROOT / "src"], cache=cache)

    started = time.perf_counter()
    report = run_lint([REPO_ROOT / "src"], cache=cache)
    elapsed = time.perf_counter() - started
    assert elapsed < WARM_BUDGET_S, f"warm run took {elapsed:.2f}s"
    # warm means WARM: nothing parsed, everything answered from cache
    assert report.stats.files_parsed == 0
    assert report.stats.flow_from_cache
    assert report.stats.summaries_from_cache == report.files_checked
