"""The mypy strictness ratchet is total, live, and monotone.

``pyproject.toml`` opts modules into an expanded-strict mypy override;
``mypy_ratchet.txt`` enumerates the modules that have not yet been
annotated.  These tests pin the invariant that makes the ratchet a
ratchet: the two sets partition ``src/repro`` exactly, with no module
unaccounted for, no stale entry, and no overlap.  Annotating a module is
then a two-line change (move it into the override, delete its ratchet
entry) that this suite verifies mechanically.
"""

import tomllib
from pathlib import Path

REPO_ROOT = Path(__file__).parents[2]
SRC = REPO_ROOT / "src"
RATCHET_FILE = REPO_ROOT / "mypy_ratchet.txt"


def _matches(pattern: str, module: str) -> bool:
    """mypy override-pattern semantics.

    ``pkg.mod`` matches only that module; ``pkg.*`` matches the package
    itself and everything below it.
    """
    if pattern.endswith(".*"):
        base = pattern[:-2]
        return module == base or module.startswith(base + ".")
    return module == pattern


def _strict_patterns() -> list[str]:
    config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    patterns: list[str] = []
    for block in overrides:
        if block.get("disallow_untyped_defs"):
            patterns.extend(block["module"])
    return patterns


def _ratchet_entries() -> list[str]:
    entries = []
    for raw in RATCHET_FILE.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            entries.append(line)
    return entries


def _all_modules() -> list[str]:
    modules = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        rel = path.relative_to(SRC).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules.append(".".join(parts))
    return modules


def test_every_module_is_strict_or_ratcheted():
    strict = _strict_patterns()
    ratchet = _ratchet_entries()
    unaccounted = [
        module
        for module in _all_modules()
        if not any(_matches(p, module) for p in strict)
        and not any(_matches(e, module) for e in ratchet)
    ]
    assert not unaccounted, (
        "modules neither under the strict mypy override nor listed in "
        f"mypy_ratchet.txt: {unaccounted}"
    )


def test_no_ratchet_entry_overlaps_the_strict_set():
    strict = _strict_patterns()
    modules = _all_modules()
    overlapping = [
        entry
        for entry in _ratchet_entries()
        if any(
            _matches(entry, module) and any(_matches(p, module) for p in strict)
            for module in modules
        )
    ]
    assert not overlapping, (
        "ratchet entries cover modules already under the strict override "
        f"(delete them): {overlapping}"
    )


def test_no_stale_ratchet_entries():
    modules = _all_modules()
    stale = [
        entry
        for entry in _ratchet_entries()
        if not any(_matches(entry, module) for module in modules)
    ]
    assert not stale, f"ratchet entries matching no existing module: {stale}"


def test_strict_set_is_nonempty_and_covers_the_core_contracts():
    strict = _strict_patterns()
    for required in ("repro.errors", "repro.runtime", "repro.geometry.*", "repro.lint.*"):
        assert required in strict, f"{required} fell out of the strict mypy override"
