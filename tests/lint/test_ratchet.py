"""The mypy strictness ratchet is total, live, and monotone.

``pyproject.toml`` opts modules into an expanded-strict mypy override;
``mypy_ratchet.txt`` enumerates the modules that have not yet been
annotated.  These tests pin the invariant that makes the ratchet a
ratchet: the two sets partition ``src/repro`` exactly, with no module
unaccounted for, no stale entry, and no overlap.  Annotating a module is
then a two-line change (move it into the override, delete its ratchet
entry) that this suite verifies mechanically.
"""

import re
from pathlib import Path

import pytest

try:  # tomllib is 3.11+ stdlib
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - the 3.10 CI leg
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

REPO_ROOT = Path(__file__).parents[2]
SRC = REPO_ROOT / "src"
RATCHET_FILE = REPO_ROOT / "mypy_ratchet.txt"


def _strip_toml_comment(line: str) -> str:
    """Drop an unquoted ``#`` comment tail from one TOML line."""
    out = []
    quote = None
    for ch in line:
        if quote:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out).strip()


def _parse_toml_value(value: str):
    value = value.strip()
    if value == "true":
        return True
    if value == "false":
        return False
    if value.startswith("["):
        return re.findall(r'"([^"]*)"', value)
    return value.strip('"')


def _parse_overrides_fallback(text: str) -> list[dict]:
    """Minimal ``[[tool.mypy.overrides]]`` reader for interpreters with
    neither ``tomllib`` (3.11+) nor ``tomli`` (the tier-1 3.10 CI leg
    installs no TOML parser).  Understands exactly what that table uses:
    ``key = value`` pairs with boolean or string-array values, arrays
    possibly spanning lines.  ``test_fallback_parser_matches_tomllib``
    pins it against the real parser wherever one exists.
    """
    overrides: list[dict] = []
    current: dict | None = None
    pending_key: str | None = None
    buffer = ""
    for raw in text.splitlines():
        line = _strip_toml_comment(raw)
        if not line:
            continue
        if pending_key is not None and current is not None:
            buffer += " " + line
            if buffer.count("[") == buffer.count("]"):
                current[pending_key] = _parse_toml_value(buffer)
                pending_key = None
            continue
        if line == "[[tool.mypy.overrides]]":
            current = {}
            overrides.append(current)
            continue
        if line.startswith("["):
            current = None
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        value = value.strip()
        if value.startswith("[") and value.count("[") != value.count("]"):
            pending_key, buffer = key.strip(), value
            continue
        current[key.strip()] = _parse_toml_value(value)
    return overrides


def _mypy_overrides() -> list[dict]:
    text = (REPO_ROOT / "pyproject.toml").read_text()
    if tomllib is not None:
        return tomllib.loads(text)["tool"]["mypy"]["overrides"]
    return _parse_overrides_fallback(text)


def _matches(pattern: str, module: str) -> bool:
    """mypy override-pattern semantics.

    ``pkg.mod`` matches only that module; ``pkg.*`` matches the package
    itself and everything below it.
    """
    if pattern.endswith(".*"):
        base = pattern[:-2]
        return module == base or module.startswith(base + ".")
    return module == pattern


def _strict_patterns() -> list[str]:
    patterns: list[str] = []
    for block in _mypy_overrides():
        if block.get("disallow_untyped_defs"):
            patterns.extend(block["module"])
    return patterns


def _ratchet_entries() -> list[str]:
    entries = []
    for raw in RATCHET_FILE.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            entries.append(line)
    return entries


def _all_modules() -> list[str]:
    modules = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        rel = path.relative_to(SRC).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules.append(".".join(parts))
    return modules


def test_every_module_is_strict_or_ratcheted():
    strict = _strict_patterns()
    ratchet = _ratchet_entries()
    unaccounted = [
        module
        for module in _all_modules()
        if not any(_matches(p, module) for p in strict)
        and not any(_matches(e, module) for e in ratchet)
    ]
    assert not unaccounted, (
        "modules neither under the strict mypy override nor listed in "
        f"mypy_ratchet.txt: {unaccounted}"
    )


def test_no_ratchet_entry_overlaps_the_strict_set():
    strict = _strict_patterns()
    modules = _all_modules()
    overlapping = [
        entry
        for entry in _ratchet_entries()
        if any(
            _matches(entry, module) and any(_matches(p, module) for p in strict)
            for module in modules
        )
    ]
    assert not overlapping, (
        "ratchet entries cover modules already under the strict override "
        f"(delete them): {overlapping}"
    )


def test_no_stale_ratchet_entries():
    modules = _all_modules()
    stale = [
        entry
        for entry in _ratchet_entries()
        if not any(_matches(entry, module) for module in modules)
    ]
    assert not stale, f"ratchet entries matching no existing module: {stale}"


def test_fallback_parser_matches_tomllib():
    if tomllib is None:
        pytest.skip("no tomllib/tomli on this interpreter to compare against")
    text = (REPO_ROOT / "pyproject.toml").read_text()
    assert _parse_overrides_fallback(text) == tomllib.loads(text)["tool"]["mypy"]["overrides"]


def test_strict_set_is_nonempty_and_covers_the_core_contracts():
    strict = _strict_patterns()
    for required in ("repro.errors", "repro.runtime", "repro.geometry.*", "repro.lint.*"):
        assert required in strict, f"{required} fell out of the strict mypy override"
