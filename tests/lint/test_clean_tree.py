"""Meta-gate: the committed tree lints clean.

This is the test-suite twin of the CI ``python -m repro.lint src tests``
job: any new violation of the domain invariants fails the ordinary
pytest run too, so the gate cannot be forgotten locally.
"""

from pathlib import Path

from repro.lint import run_lint

REPO_ROOT = Path(__file__).parents[2]


def test_live_tree_is_clean():
    report = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert report.files_checked > 150  # sanity: the walk saw the real tree
    formatted = "\n".join(d.format_text() for d in report.diagnostics)
    assert report.clean, f"repro.lint violations in the committed tree:\n{formatted}"


def test_known_suppressions_are_present():
    # The resilient fallback chain is the one sanctioned broad-except
    # site; its suppression must stay explicit (not rule-widening).
    resilient = REPO_ROOT / "src" / "repro" / "service" / "resilient.py"
    assert "repro-lint: disable=R005" in resilient.read_text()
