"""Engine-level behavior of the flow layer: the incremental cache, the
``--changed-only`` slice, SARIF output, and rule-selection interplay."""

import json
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.flow.cache import CACHE_SCHEMA_VERSION, LintCache
from repro.lint.sarif import SARIF_VERSION, to_sarif

FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def make_project(root: Path, body: str = "") -> Path:
    pkg = root / "repro" / "histograms"
    pkg.mkdir(parents=True)
    (root / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (root / "repro" / "runtime.py").write_text(
        "def checkpoint(stage):\n    pass\n"
    )
    (pkg / "kern.py").write_text(
        "from ..runtime import checkpoint\n"
        "def build(xs):\n"
        "    for x in xs:\n"
        "        checkpoint('k')\n" + body
    )
    (pkg / "other.py").write_text(
        "from .kern import build\n"
        "def drive(xs):\n"
        "    return build(xs)\n"
    )
    return root


class TestIncrementalCache:
    def test_warm_run_reuses_everything(self, tmp_path):
        proj = make_project(tmp_path / "proj")
        cache = tmp_path / "cache.json"

        cold = run_lint([proj], cache=cache)
        assert cold.stats.files_parsed > 0
        assert not cold.stats.flow_from_cache
        assert cache.exists()

        warm = run_lint([proj], cache=cache)
        assert warm.stats.files_parsed == 0
        assert warm.stats.summaries_from_cache == cold.files_checked
        assert warm.stats.file_diags_from_cache == cold.files_checked
        assert warm.stats.flow_from_cache
        assert [d.as_dict() for d in warm.diagnostics] == [
            d.as_dict() for d in cold.diagnostics
        ]

    def test_edit_invalidates_only_the_changed_file(self, tmp_path):
        proj = make_project(tmp_path / "proj")
        cache = tmp_path / "cache.json"
        run_lint([proj], cache=cache)

        kern = proj / "repro" / "histograms" / "kern.py"
        kern.write_text(kern.read_text() + "\n\nEXTRA = 1\n")
        rerun = run_lint([proj], cache=cache)
        # re-parsed: the edited file, plus its one importer (whose
        # per-file diagnostics are keyed on the dependency's digest)
        assert rerun.stats.files_parsed == 2
        assert rerun.stats.summaries_from_cache == 4
        # the flow key covers the whole project: any edit re-links
        assert not rerun.stats.flow_from_cache

    def test_corrupt_cache_behaves_like_no_cache(self, tmp_path):
        proj = make_project(tmp_path / "proj")
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = run_lint([proj], cache=cache)
        assert report.stats.files_parsed > 0

    def test_version_skew_discards_the_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps({"version": CACHE_SCHEMA_VERSION + 1, "summaries": {}})
        )
        cache = LintCache(path)
        assert cache.get_summary("anything") is None

    def test_save_prunes_dead_digests(self, tmp_path):
        proj = make_project(tmp_path / "proj")
        cache_path = tmp_path / "cache.json"
        run_lint([proj], cache=cache_path)
        raw = json.loads(cache_path.read_text())
        n_before = len(raw["summaries"])

        kern = proj / "repro" / "histograms" / "kern.py"
        kern.write_text(kern.read_text() + "\nEXTRA = 2\n")
        run_lint([proj], cache=cache_path)
        raw = json.loads(cache_path.read_text())
        # the stale digest of kern.py was pruned, not accreted
        assert len(raw["summaries"]) == n_before


class TestChangedOnlySlice:
    def test_one_file_diff_analyzes_its_reverse_closure(self, tmp_path):
        proj = make_project(tmp_path / "proj")
        cache = tmp_path / "cache.json"
        run_lint([proj], cache=cache)

        kern = proj / "repro" / "histograms" / "kern.py"
        kern.write_text(kern.read_text() + "\nEXTRA = 3\n")
        report = run_lint([proj], cache=cache, changed=[kern])
        # slice = kern.py + other.py (imports it); __init__/runtime stay out
        assert report.stats.slice_files == 2
        assert report.files_checked == 2
        # parsed: the edited file, plus the importer whose per-file
        # diagnostics were invalidated by the new dependency digest
        assert report.stats.files_parsed == 2
        assert report.stats.summaries_from_cache == 4

    def test_unchanged_project_with_empty_diff_checks_nothing(self, tmp_path):
        proj = make_project(tmp_path / "proj")
        cache = tmp_path / "cache.json"
        run_lint([proj], cache=cache)
        report = run_lint([proj], cache=cache, changed=[])
        assert report.stats.slice_files == 0
        assert report.files_checked == 0

    def test_flow_findings_outside_the_slice_are_hidden(self, tmp_path):
        # an uncovered kernel loop lives in kern.py; a diff touching only
        # other.py (which nothing imports) must not re-report it
        proj = make_project(
            tmp_path / "proj",
            body=(
                "def bad(xs):\n"
                "    for x in xs:\n"
                + "".join(f"        y{i} = x + {i}\n" for i in range(9))
            ),
        )
        full = run_lint([proj])
        assert any(d.rule == "R010" for d in full.diagnostics)

        other = proj / "repro" / "histograms" / "other.py"
        other.write_text(other.read_text() + "\nEXTRA = 1\n")
        sliced = run_lint([proj], changed=[other])
        assert sliced.stats.slice_files == 1
        flagged_paths = {d.path for d in sliced.diagnostics}
        assert all("kern.py" not in p for p in flagged_paths)


class TestSarifOutput:
    @pytest.fixture(scope="class")
    def sarif(self):
        return to_sarif(run_lint([FLOW_FIXTURES]))

    def test_document_shape(self, sarif):
        assert sarif["version"] == SARIF_VERSION
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro.lint"

    def test_every_rule_is_catalogued(self, sarif):
        ids = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        assert {"R001", "R009", "R010", "R014", "E001"} <= ids

    def test_results_carry_locations(self, sarif):
        results = sarif["runs"][0]["results"]
        assert results  # the fixture corpus has known violations
        for result in results:
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            assert loc["region"]["startLine"] >= 1


class TestRuleSelection:
    def test_no_flow_skips_r010_r014(self):
        report = run_lint([FLOW_FIXTURES], flow=False)
        assert not any(d.rule.startswith("R01") for d in report.diagnostics)

    def test_r010_subsumes_r002_by_default(self, tmp_path):
        # an uncovered long loop: flagged once (R010), not twice
        proj = make_project(
            tmp_path / "proj",
            body=(
                "def bad(xs):\n"
                "    for x in xs:\n"
                + "".join(f"        y{i} = x + {i}\n" for i in range(9))
            ),
        )
        report = run_lint([proj])
        rules = [d.rule for d in report.diagnostics]
        assert "R010" in rules
        assert "R002" not in rules

    def test_explicit_select_r002_still_works(self, tmp_path):
        proj = make_project(
            tmp_path / "proj",
            body=(
                "def bad(xs):\n"
                "    for x in xs:\n"
                + "".join(f"        y{i} = x + {i}\n" for i in range(9))
            ),
        )
        report = run_lint([proj], select=["R002"])
        assert {d.rule for d in report.diagnostics} == {"R002"}
