"""CLI contract: exit codes, text output, and the JSON schema."""

import json
from pathlib import Path

from repro.lint.cli import JSON_SCHEMA_VERSION, main

FIXTURES = Path(__file__).parent / "fixtures"
PKG = FIXTURES / "repro"

DIAGNOSTIC_KEYS = {"rule", "name", "path", "line", "col", "message"}


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, str(PKG / "histograms" / "clean.py"))
        assert code == 0
        assert "no violations" in out

    def test_violations_exit_one(self, capsys):
        code, out, err = run_cli(capsys, str(PKG / "histograms" / "r001_global_rng.py"))
        assert code == 1
        assert "R001" in out
        assert "violation" in err

    def test_missing_path_exits_two(self, capsys):
        code, _, err = run_cli(capsys, "no/such/path.py")
        assert code == 2
        assert "error" in err

    def test_unknown_rule_exits_two(self, capsys):
        code, _, err = run_cli(capsys, "--select", "R999", str(PKG))
        assert code == 2
        assert "R999" in err


class TestTextOutput:
    def test_file_line_col_format(self, capsys):
        _, out, _ = run_cli(capsys, str(PKG / "histograms" / "r004_missing_dtype.py"))
        first = out.splitlines()[0]
        assert first.endswith("R004 [explicit-dtype] 'np.zeros' without an explicit dtype= — the rect-array and scatter kernels assume float64 (and int64 indices); inferred dtypes drift with the input and break bit-identity guarantees") or "R004" in first
        path, line, col, *_ = first.split(":")
        assert path.endswith("r004_missing_dtype.py")
        assert line.isdigit() and col.split(" ")[0].isdigit()

    def test_statistics_summary(self, capsys):
        _, out, _ = run_cli(
            capsys, "--statistics", str(PKG / "histograms" / "r004_missing_dtype.py")
        )
        assert "R004 [explicit-dtype]: 4" in out

    def test_list_rules(self, capsys):
        code, out, _ = run_cli(capsys, "--list-rules")
        assert code == 0
        for rule_id in (
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
            "R010", "R011", "R012", "R013", "R014",
        ):
            assert rule_id in out


class TestJsonOutput:
    def test_schema(self, capsys):
        code, out, _ = run_cli(
            capsys, "--format", "json", str(PKG / "histograms" / "r001_global_rng.py")
        )
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["clean"] is False
        assert payload["summary"] == {"R001": 3}
        for diag in payload["diagnostics"]:
            assert set(diag) == DIAGNOSTIC_KEYS
            assert diag["rule"] == "R001"
            assert diag["line"] >= 1 and diag["col"] >= 1

    def test_clean_json(self, capsys):
        code, out, _ = run_cli(
            capsys, "--format", "json", str(PKG / "histograms" / "clean.py")
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["clean"] is True
        assert payload["diagnostics"] == []
        assert payload["summary"] == {}

    def test_json_is_machine_sorted(self, capsys):
        _, out, _ = run_cli(capsys, "--format", "json", str(PKG))
        payload = json.loads(out)
        locs = [(d["path"], d["line"], d["col"], d["rule"]) for d in payload["diagnostics"]]
        assert locs == sorted(locs)


class TestSelectIgnore:
    def test_select_narrows_rules(self, capsys):
        code, out, _ = run_cli(
            capsys, "--select", "R005", str(PKG / "histograms" / "r001_global_rng.py")
        )
        assert code == 0
        assert "no violations" in out

    def test_ignore_drops_rules(self, capsys):
        code, _, _ = run_cli(
            capsys, "--ignore", "R001", str(PKG / "histograms" / "r001_global_rng.py")
        )
        assert code == 0


class TestFlowFlags:
    FLOW = FIXTURES / "flow"

    def test_no_flow_drops_interprocedural_rules(self, capsys):
        code, out, _ = run_cli(capsys, "--format", "json", str(self.FLOW))
        payload = json.loads(out)
        assert any(d["rule"].startswith("R01") for d in payload["diagnostics"])

        code, out, _ = run_cli(capsys, "--no-flow", "--format", "json", str(self.FLOW))
        payload = json.loads(out)
        assert not any(d["rule"].startswith("R01") for d in payload["diagnostics"])

    def test_sarif_flag_writes_a_report(self, capsys, tmp_path):
        sarif_path = tmp_path / "out" / "lint.sarif"
        run_cli(capsys, "--sarif", str(sarif_path), str(self.FLOW))
        doc = json.loads(sarif_path.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]

    def test_cache_flag_makes_the_second_run_warm(self, capsys, tmp_path):
        cache = tmp_path / "cache.json"
        run_cli(capsys, "--cache", str(cache), "--format", "json", str(self.FLOW))
        _, out, _ = run_cli(
            capsys, "--cache", str(cache), "--format", "json", str(self.FLOW)
        )
        stats = json.loads(out)["stats"]
        assert stats["files_parsed"] == 0
        assert stats["flow_from_cache"] is True

    def test_changed_only_slices_to_the_diff(self, capsys, tmp_path, monkeypatch):
        import subprocess

        pkg = tmp_path / "repro" / "histograms"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "one.py").write_text("def f():\n    pass\n")
        (pkg / "two.py").write_text("def g():\n    pass\n")

        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
                cwd=tmp_path,
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        (pkg / "one.py").write_text("def f():\n    return 1\n")

        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(
            capsys, "--changed-only", "--format", "json", str(tmp_path)
        )
        assert code == 0
        payload = json.loads(out)
        # the slice is the edited file alone: nothing imports one.py
        assert payload["stats"]["slice_files"] == 1
        assert payload["files_checked"] == 1


class TestDirectoryWalk:
    def test_fixture_directories_are_skipped_in_tree_runs(self, capsys):
        # Linting tests/ (which contains this corpus under fixtures/)
        # must not surface the intentional violations.
        code, out, _ = run_cli(capsys, str(Path(__file__).parent))
        assert code == 0
        assert "no violations" in out

    def test_explicit_fixture_file_is_linted_despite_exclusion(self, capsys):
        code, _, _ = run_cli(capsys, str(FIXTURES / "parse_error.py"))
        assert code == 1

    def test_other_fixtures_directories_are_still_linted(self, capsys, tmp_path):
        # Only the corpus at tests/lint/fixtures is skipped; a directory
        # that merely happens to be named `fixtures` elsewhere must not
        # be silently certified clean.
        pkg = tmp_path / "repro"
        (pkg / "fixtures").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "fixtures" / "__init__.py").write_text("")
        (pkg / "fixtures" / "mod.py").write_text(
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        pass\n"
        )
        code, out, _ = run_cli(capsys, str(tmp_path))
        assert code == 1
        assert "R005" in out
