"""Interprocedural rules (R010–R014) against the flow fixture corpus.

The corpus under ``fixtures/flow`` is its own miniature ``repro``
package tree (module identity comes from the ``__init__.py`` chain), so
one whole-program run covers every rule: each case file holds known
violations at known lines plus negative shapes that must stay silent.
"""

from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.flow.rules import FLOW_RULES

FLOW_FIXTURES = Path(__file__).parent / "fixtures" / "flow"


@pytest.fixture(scope="module")
def flow_report():
    return run_lint([FLOW_FIXTURES])


def hits(report, rule_id):
    return sorted(
        (Path(d.path).name, d.line)
        for d in report.diagnostics
        if d.rule == rule_id
    )


class TestRegistry:
    def test_flow_rule_ids(self):
        assert sorted(FLOW_RULES) == ["R010", "R011", "R012", "R013", "R014"]

    def test_ids_do_not_collide_with_perfile_rules(self):
        from repro.lint import RULES

        assert not set(RULES) & set(FLOW_RULES)


class TestR010CheckpointReachability:
    def test_flags_exactly_the_uncovered_loops(self, flow_report):
        assert hits(flow_report, "R010") == [
            ("r010_cases.py", 39),  # uncovered_local
            ("r010_cases.py", 55),  # uncovered_through_helper
        ]

    def test_lexical_and_callee_cover_are_silent(self, flow_report):
        lines = [line for name, line in hits(flow_report, "R010")]
        assert 16 not in lines  # local_cover's loop
        assert 31 not in lines  # helper_cover's loop

    def test_messages_explain_the_reachability_contract(self, flow_report):
        msgs = [d.message for d in flow_report.diagnostics if d.rule == "R010"]
        assert all("checkpoint" in m for m in msgs)


class TestR011AsyncBlocking:
    def test_direct_and_transitive_blocking_flagged(self, flow_report):
        assert hits(flow_report, "R011") == [
            ("r011_cases.py", 22),  # np.load in direct_block
            ("r011_cases.py", 27),  # _sync_recv pipe wait
        ]

    def test_executor_hop_and_async_callee_are_silent(self, flow_report):
        lines = [line for name, line in hits(flow_report, "R011")]
        assert 33 not in lines  # run_in_executor hop
        assert 38 not in lines  # await of an async callee

    def test_transitive_message_names_the_helper_and_primitive(self, flow_report):
        transitive = [
            d for d in flow_report.diagnostics
            if d.rule == "R011" and d.line == 27
        ]
        assert len(transitive) == 1
        assert "_sync_recv" in transitive[0].message
        assert "pipe wait" in transitive[0].message


class TestR012GuardedBy:
    def test_unlocked_read_and_unlocked_entry_path_flagged(self, flow_report):
        assert hits(flow_report, "R012") == [
            ("r012_cases.py", 25),  # racy_read
            ("r012_cases.py", 28),  # _bump_locked via racy_entry
        ]

    def test_locked_paths_are_silent(self, flow_report):
        names = {name for name, _line in hits(flow_report, "R012")}
        # Disciplined: every caller holds the lock -> no diagnostics at all
        msgs = [d.message for d in flow_report.diagnostics if d.rule == "R012"]
        assert all("Disciplined" not in m for m in msgs)
        assert names == {"r012_cases.py"}


class TestR013PickleSafety:
    def test_direct_transitive_and_helper_sinks_flagged(self, flow_report):
        assert hits(flow_report, "R013") == [
            ("r013_cases.py", 39),  # conn.send(cache)
            ("r013_cases.py", 44),  # pool.submit(_work, config)
            ("r013_cases.py", 53),  # _relay(conn, cache)
        ]

    def test_plain_payloads_and_process_pipe_args_are_silent(self, flow_report):
        lines = [line for name, line in hits(flow_report, "R013")]
        assert 58 not in lines  # conn.send(payload) — plain tuple
        assert 63 not in lines  # Process(args=(child,)) — mp reduction

    def test_transitive_class_is_named(self, flow_report):
        at_44 = [
            d for d in flow_report.diagnostics
            if d.rule == "R013" and d.line == 44
        ]
        assert "ReplicaConfig" in at_44[0].message


class TestR014DeadlineSingleSpend:
    def test_carrier_respend_and_downstream_spend_flagged(self, flow_report):
        assert hits(flow_report, "R014") == [
            ("r014_cases.py", 26),  # run: type A
            ("r014_cases.py", 32),  # finish: type B
        ]

    def test_entry_derived_and_cycle_origin_are_silent(self, flow_report):
        lines = [line for name, line in hits(flow_report, "R014")]
        assert 15 not in lines  # entry-point spend
        assert 21 not in lines  # Deadline(budget_s) — derived
        assert 38 not in lines  # cycle_entry — origin of its own chain


class TestSuppressionInterplay:
    """Flow diagnostics honor only the *diagnostic's own* file and line."""

    def test_caller_side_disable_does_not_silence_callee_loop(self, flow_report):
        # caller_side_disable carries `disable=R010` on its call into
        # uncovered_local; the loop diagnostic at line 39 must survive.
        assert ("r010_cases.py", 39) in hits(flow_report, "R010")

    def test_disable_file_in_transit_module_does_not_suppress(self, flow_report):
        # r010_helpers.py is disable-file=R010 and sits on the uncovered
        # path; the diagnostic belongs to r010_cases.py and must survive.
        assert ("r010_cases.py", 55) in hits(flow_report, "R010")
        helper_hits = [
            name for name, _line in hits(flow_report, "R010")
            if name == "r010_helpers.py"
        ]
        assert helper_hits == []

    def test_disable_on_the_flagged_line_does_suppress(self, tmp_path):
        pkg = tmp_path / "repro" / "histograms"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        lines = "\n".join(f"        x{i} = v + {i}" for i in range(9))
        (pkg / "mod.py").write_text(
            "def f(values):\n"
            "    for v in values:  # repro-lint: disable=R010\n"
            f"{lines}\n"
        )
        report = run_lint([tmp_path])
        assert [d for d in report.diagnostics if d.rule == "R010"] == []
