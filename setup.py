"""Shim so `pip install -e .` works without the `wheel` package installed.

The environment has setuptools 65 but no `wheel`, so PEP 660 editable
wheels cannot be built; the presence of setup.py lets pip fall back to
the legacy `setup.py develop` editable path. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
